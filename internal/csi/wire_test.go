package csi

import (
	"math/cmplx"
	"testing"

	"megamimo/internal/rng"
)

func sampleReport(src *rng.Source, ants, nfft int, bins []int) *Report {
	r := &Report{
		Client:     2,
		RxAnt:      1,
		TxAnts:     make([]int, ants),
		H:          make([][]complex128, ants),
		NoiseVar:   3.25e-3,
		MeasuredAt: 123456789,
	}
	for a := 0; a < ants; a++ {
		r.TxAnts[a] = a*4 + 1
		row := make([]complex128, nfft)
		for _, b := range bins {
			row[b] = src.ComplexNormal(1)
		}
		r.H[a] = row
	}
	return r
}

func occupied() []int {
	out := make([]int, 0, 52)
	for k := 1; k <= 26; k++ {
		out = append(out, k)
	}
	for k := 38; k <= 63; k++ {
		out = append(out, k)
	}
	return out
}

func TestWireRoundTripSingleChunk(t *testing.T) {
	bins := occupied()
	r := sampleReport(rng.New(1), 2, 64, bins)
	chunks, err := r.MarshalChunks(bins, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Fatalf("%d chunks for 2 antennas", len(chunks))
	}
	a := NewAssembler()
	got, err := a.Feed(chunks[0], 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("single chunk did not complete")
	}
	verifyReport(t, r, got, bins)
}

func TestWireRoundTripMultiChunkAnyOrder(t *testing.T) {
	bins := occupied()
	r := sampleReport(rng.New(2), 10, 64, bins)
	chunks, err := r.MarshalChunks(bins, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	a := NewAssembler()
	// Feed in reverse order; only the last must complete.
	for i := len(chunks) - 1; i >= 0; i-- {
		got, err := a.Feed(chunks[i], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if got == nil {
				t.Fatal("report did not complete")
			}
			verifyReport(t, r, got, bins)
		} else if got != nil {
			t.Fatal("completed early")
		}
	}
}

func TestWireDuplicateChunkIgnored(t *testing.T) {
	bins := occupied()
	r := sampleReport(rng.New(3), 6, 64, bins)
	chunks, _ := r.MarshalChunks(bins, 1000)
	a := NewAssembler()
	if _, err := a.Feed(chunks[0], 6, 64); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Feed(chunks[0], 6, 64); err != nil || got != nil {
		t.Fatalf("duplicate handling: %v %v", got, err)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	a := NewAssembler()
	if _, err := a.Feed([]byte{1, 2, 3}, 2, 64); err == nil {
		t.Fatal("short payload accepted")
	}
	bins := occupied()
	r := sampleReport(rng.New(4), 2, 64, bins)
	chunks, _ := r.MarshalChunks(bins, 1400)
	bad := append([]byte(nil), chunks[0]...)
	bad[0] ^= 0xFF // magic
	if _, err := a.Feed(bad, 2, 64); err == nil {
		t.Fatal("bad magic accepted")
	}
	trunc := chunks[0][:len(chunks[0])/2]
	if _, err := a.Feed(trunc, 2, 64); err == nil {
		t.Fatal("truncated chunk accepted")
	}
}

func TestMaxAntennasPerChunk(t *testing.T) {
	n := MaxAntennasPerChunk(52, 1400)
	if n < 2 || n > 3 {
		t.Fatalf("antennas per 1400B chunk = %d", n)
	}
	if MaxAntennasPerChunk(52, 10) != 1 {
		t.Fatal("tiny payload must still allow 1 antenna")
	}
}

func verifyReport(t *testing.T, want, got *Report, bins []int) {
	t.Helper()
	if got.Client != want.Client || got.RxAnt != want.RxAnt || got.MeasuredAt != want.MeasuredAt {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if d := got.NoiseVar - want.NoiseVar; d > 1e-12 || d < -1e-12 {
		t.Fatalf("noise var %v != %v", got.NoiseVar, want.NoiseVar)
	}
	for a := range want.H {
		if got.TxAnts[a] != want.TxAnts[a] {
			t.Fatalf("ant id %d: %d != %d", a, got.TxAnts[a], want.TxAnts[a])
		}
		for _, b := range bins {
			if cmplx.Abs(got.H[a][b]-want.H[a][b]) > 1e-6 {
				t.Fatalf("H[%d][%d] = %v, want %v", a, b, got.H[a][b], want.H[a][b])
			}
		}
	}
}
