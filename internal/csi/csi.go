// Package csi defines the channel-state-information reports clients feed
// back to the APs. The 802.11n testbed path (§6) obtains CSI from the
// Intel 5300's firmware, which quantizes each complex entry; the software
// radio path reports full-precision estimates. Quantize models the
// firmware's fixed-point format so experiments can study feedback
// precision.
package csi

import (
	"math"
	"math/cmplx"
)

// Report is one client's measurement of the channel from a set of transmit
// antennas, all referenced to a single measurement time.
type Report struct {
	// Client is the reporting client ID; RxAnt its antenna index.
	Client, RxAnt int
	// TxAnts lists the transmit antenna IDs the rows of H correspond to.
	TxAnts []int
	// H holds one 64-bin frequency response per transmit antenna,
	// H[a][bin], rotated to the common reference time.
	H [][]complex128
	// NoiseVar is the client's estimated noise variance (the paper's
	// clients "send the noise N to APs along with the measured channels").
	NoiseVar float64
	// MeasuredAt is the reference ether time of the snapshot.
	MeasuredAt int64
}

// Clone deep-copies the report.
func (r *Report) Clone() *Report {
	out := *r
	out.TxAnts = append([]int(nil), r.TxAnts...)
	out.H = make([][]complex128, len(r.H))
	for i, h := range r.H {
		out.H[i] = append([]complex128(nil), h...)
	}
	return &out
}

// Quantize rounds each complex component to the given number of bits over
// a symmetric full-scale range equal to the largest component magnitude in
// h, mimicking the Intel 5300's signed fixed-point CSI format. bits counts
// magnitude bits excluding sign; bits ≤ 0 returns an unmodified copy.
func Quantize(h []complex128, bits int) []complex128 {
	out := append([]complex128(nil), h...)
	if bits <= 0 {
		return out
	}
	var fs float64
	for _, v := range h {
		if a := math.Abs(real(v)); a > fs {
			fs = a
		}
		if a := math.Abs(imag(v)); a > fs {
			fs = a
		}
	}
	if fs == 0 {
		return out
	}
	levels := float64(int(1) << bits)
	step := fs / levels
	q := func(x float64) float64 {
		return math.Round(x/step) * step
	}
	for i, v := range out {
		out[i] = complex(q(real(v)), q(imag(v)))
	}
	return out
}

// QuantizeReport applies Quantize to every row of the report in place.
func QuantizeReport(r *Report, bits int) {
	for i := range r.H {
		r.H[i] = Quantize(r.H[i], bits)
	}
}

// MaxQuantError returns the largest per-entry error magnitude between a
// report row and its quantized form — a diagnostic for feedback-precision
// experiments.
func MaxQuantError(orig, quant []complex128) float64 {
	var m float64
	for i := range orig {
		if d := cmplx.Abs(orig[i] - quant[i]); d > m {
			m = d
		}
	}
	return m
}
