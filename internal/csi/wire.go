package csi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for CSI feedback frames (the paper's clients report channels
// over the wireless uplink, so reports must fit in PSDUs):
//
//	header:  magic(2) version(1) client(1) rxAnt(1) chunk(1) chunks(1)
//	         antsInChunk(1) binsPerAnt(2) firstAnt(2) measuredAt(8)
//	         noiseVar(8)
//	per ant: antennaID(2), then binsPerAnt × (binIdx(1), re(4), im(4))
//
// Channel values travel as float32 — more precision than any over-the-air
// estimate carries. A report with many transmit antennas is split into
// chunks that each fit a single frame.
const (
	wireMagic   = 0xC51F
	wireVersion = 1
	headerLen   = 2 + 1 + 1 + 1 + 1 + 1 + 1 + 2 + 2 + 8 + 8
	perBinLen   = 1 + 4 + 4
)

// MaxAntennasPerChunk returns how many antenna rows (each with nBins
// occupied bins) fit in a frame of maxPSDU payload bytes.
func MaxAntennasPerChunk(nBins, maxPayload int) int {
	perAnt := 2 + nBins*perBinLen
	n := (maxPayload - headerLen) / perAnt
	if n < 1 {
		n = 1
	}
	return n
}

// MarshalChunks serializes the report into one or more payloads, each at
// most maxPayload bytes, covering the occupied bins listed in bins.
func (r *Report) MarshalChunks(bins []int, maxPayload int) ([][]byte, error) {
	if len(r.H) == 0 {
		return nil, fmt.Errorf("csi: empty report")
	}
	if len(bins) == 0 || len(bins) > 255 {
		return nil, fmt.Errorf("csi: %d bins unsupported", len(bins))
	}
	perChunk := MaxAntennasPerChunk(len(bins), maxPayload)
	nAnts := len(r.H)
	chunks := (nAnts + perChunk - 1) / perChunk
	if chunks > 255 {
		return nil, fmt.Errorf("csi: report too large (%d chunks)", chunks)
	}
	var out [][]byte
	for c := 0; c < chunks; c++ {
		first := c * perChunk
		last := first + perChunk
		if last > nAnts {
			last = nAnts
		}
		buf := make([]byte, 0, headerLen+(last-first)*(2+len(bins)*perBinLen))
		buf = binary.LittleEndian.AppendUint16(buf, wireMagic)
		buf = append(buf, wireVersion, byte(r.Client), byte(r.RxAnt), byte(c), byte(chunks), byte(last-first))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(bins)))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(first))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.MeasuredAt))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.NoiseVar))
		for a := first; a < last; a++ {
			id := 0
			if a < len(r.TxAnts) {
				id = r.TxAnts[a]
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(id))
			row := r.H[a]
			for _, b := range bins {
				buf = append(buf, byte(b))
				var v complex128
				if b < len(row) {
					v = row[b]
				}
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(real(v))))
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(imag(v))))
			}
		}
		out = append(out, buf)
	}
	return out, nil
}

// Assembler reassembles chunked reports arriving in any order.
type Assembler struct {
	partial map[[2]int]*pending
}

type pending struct {
	report *Report
	seen   []bool
	nBins  int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{partial: make(map[[2]int]*pending)}
}

// Feed parses one payload. It returns a completed report when the payload
// finishes its report, or nil while chunks are still missing.
func (a *Assembler) Feed(payload []byte, totalAnts, nfft int) (*Report, error) {
	if len(payload) < headerLen {
		return nil, fmt.Errorf("csi: payload too short")
	}
	if binary.LittleEndian.Uint16(payload) != wireMagic || payload[2] != wireVersion {
		return nil, fmt.Errorf("csi: bad magic/version")
	}
	client := int(payload[3])
	rxAnt := int(payload[4])
	chunk := int(payload[5])
	chunks := int(payload[6])
	antsIn := int(payload[7])
	nBins := int(binary.LittleEndian.Uint16(payload[8:]))
	first := int(binary.LittleEndian.Uint16(payload[10:]))
	measuredAt := int64(binary.LittleEndian.Uint64(payload[12:]))
	noiseVar := math.Float64frombits(binary.LittleEndian.Uint64(payload[20:]))
	if chunk >= chunks || chunks == 0 {
		return nil, fmt.Errorf("csi: chunk %d/%d", chunk, chunks)
	}
	need := headerLen + antsIn*(2+nBins*perBinLen)
	if len(payload) < need {
		return nil, fmt.Errorf("csi: truncated chunk (%d < %d)", len(payload), need)
	}

	key := [2]int{client, rxAnt}
	p := a.partial[key]
	if p == nil {
		p = &pending{
			report: &Report{
				Client:     client,
				RxAnt:      rxAnt,
				TxAnts:     make([]int, totalAnts),
				H:          make([][]complex128, totalAnts),
				NoiseVar:   noiseVar,
				MeasuredAt: measuredAt,
			},
			seen:  make([]bool, chunks),
			nBins: nBins,
		}
		a.partial[key] = p
	}
	if chunk < len(p.seen) && p.seen[chunk] {
		return nil, nil // duplicate
	}
	off := headerLen
	for i := 0; i < antsIn; i++ {
		ant := first + i
		if ant >= totalAnts {
			return nil, fmt.Errorf("csi: antenna index %d out of range", ant)
		}
		p.report.TxAnts[ant] = int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		row := make([]complex128, nfft)
		for b := 0; b < nBins; b++ {
			bin := int(payload[off])
			re := math.Float32frombits(binary.LittleEndian.Uint32(payload[off+1:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(payload[off+5:]))
			if bin < nfft {
				row[bin] = complex(float64(re), float64(im))
			}
			off += perBinLen
		}
		p.report.H[ant] = row
	}
	if chunk < len(p.seen) {
		p.seen[chunk] = true
	}
	for _, s := range p.seen {
		if !s {
			return nil, nil
		}
	}
	delete(a.partial, key)
	return p.report, nil
}
