package csi

import (
	"math"
	"math/cmplx"
	"testing"

	"megamimo/internal/rng"
)

func TestQuantizeZeroBitsIsCopy(t *testing.T) {
	h := []complex128{1 + 2i, -0.5i}
	q := Quantize(h, 0)
	for i := range h {
		if q[i] != h[i] {
			t.Fatal("bits=0 should not change values")
		}
	}
	q[0] = 0
	if h[0] != 1+2i {
		t.Fatal("Quantize must copy")
	}
}

func TestQuantizeErrorBound(t *testing.T) {
	src := rng.New(1)
	h := src.ComplexNormalVec(make([]complex128, 64), 1)
	for _, bits := range []int{4, 8, 12} {
		q := Quantize(h, bits)
		var fs float64
		for _, v := range h {
			fs = math.Max(fs, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
		}
		step := fs / float64(int(1)<<bits)
		bound := step * math.Sqrt2 / 2 * 1.0001
		for i := range h {
			if cmplx.Abs(q[i]-h[i]) > bound {
				t.Fatalf("bits=%d entry %d error %v > bound %v", bits, i, cmplx.Abs(q[i]-h[i]), bound)
			}
		}
	}
}

func TestQuantizeMoreBitsIsFiner(t *testing.T) {
	src := rng.New(2)
	h := src.ComplexNormalVec(make([]complex128, 64), 1)
	e4 := MaxQuantError(h, Quantize(h, 4))
	e10 := MaxQuantError(h, Quantize(h, 10))
	if e10 >= e4 {
		t.Fatalf("10-bit error %v not finer than 4-bit %v", e10, e4)
	}
}

func TestQuantizeAllZero(t *testing.T) {
	h := make([]complex128, 8)
	q := Quantize(h, 8)
	for _, v := range q {
		if v != 0 {
			t.Fatal("zero input quantized to nonzero")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := &Report{
		Client: 1, RxAnt: 0,
		TxAnts: []int{3, 4},
		H:      [][]complex128{{1, 2}, {3, 4}},
	}
	c := r.Clone()
	c.H[0][0] = 99
	c.TxAnts[0] = 99
	if r.H[0][0] != 1 || r.TxAnts[0] != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestQuantizeReportInPlace(t *testing.T) {
	src := rng.New(3)
	r := &Report{H: [][]complex128{src.ComplexNormalVec(make([]complex128, 16), 1)}}
	orig := append([]complex128(nil), r.H[0]...)
	QuantizeReport(r, 4)
	if MaxQuantError(orig, r.H[0]) == 0 {
		t.Fatal("QuantizeReport had no effect at 4 bits")
	}
}
