package ofdm

import (
	"math"

	"megamimo/internal/dsp"
)

// The 802.11 legacy preamble:
//
//	L-STF: 10 repetitions of a 16-sample pattern (160 samples) — packet
//	       detection, AGC, coarse CFO.
//	L-LTF: 32-sample guard + 2 × 64-sample training symbols (160 samples) —
//	       fine timing, fine CFO, channel estimation.
const (
	STFLen      = 160
	STFPeriod   = 16
	LTFLen      = 160
	LTFGuard    = 32
	PreambleLen = STFLen + LTFLen
)

// stfFreq returns the frequency-domain short-training sequence S_{-26..26}
// (802.11-1999 §17.3.3) placed on a 64-bin grid.
func stfFreq() []complex128 {
	v := complex(math.Sqrt(13.0/6.0), 0) * (1 + 1i)
	m := map[int]complex128{
		-24: v, -20: -v, -16: v, -12: -v, -8: -v, -4: v,
		4: -v, 8: -v, 12: v, 16: v, 20: v, 24: v,
	}
	out := make([]complex128, NFFT)
	for k, val := range m {
		out[Bin(k)] = val
	}
	return out
}

// ltfSeq is L_{-26..26} from 802.11-1999 §17.3.3.
var ltfSeq = [53]float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// LTFFreq returns the frequency-domain long-training sequence on a 64-bin
// grid; bins outside −26…26 are zero.
func LTFFreq() []complex128 {
	out := make([]complex128, NFFT)
	for i, v := range ltfSeq {
		k := i - 26
		out[Bin(k)] = complex(v, 0)
	}
	return out
}

// STF returns the 160-sample short training field.
func STF() []complex128 {
	plan := dsp.MustPlanFor(NFFT)
	t := make([]complex128, NFFT)
	plan.Inverse(t, stfFreq())
	scale := complex(math.Sqrt(NFFT), 0)
	for i := range t {
		t[i] *= scale
	}
	out := make([]complex128, STFLen)
	for i := range out {
		out[i] = t[i%NFFT]
	}
	return out
}

// LTF returns the 160-sample long training field: a 32-sample guard
// (the tail of the long symbol) followed by two full 64-sample symbols.
func LTF() []complex128 {
	plan := dsp.MustPlanFor(NFFT)
	t := make([]complex128, NFFT)
	plan.Inverse(t, LTFFreq())
	scale := complex(math.Sqrt(NFFT), 0)
	for i := range t {
		t[i] *= scale
	}
	out := make([]complex128, LTFLen)
	copy(out[:LTFGuard], t[NFFT-LTFGuard:])
	copy(out[LTFGuard:LTFGuard+NFFT], t)
	copy(out[LTFGuard+NFFT:], t)
	return out
}

// Preamble returns STF followed by LTF (320 samples).
func Preamble() []complex128 {
	out := make([]complex128, 0, PreambleLen)
	out = append(out, STF()...)
	out = append(out, LTF()...)
	return out
}
