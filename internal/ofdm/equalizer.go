package ofdm

import (
	"fmt"
	"math/cmplx"

	"megamimo/internal/units"
)

// Equalizer applies a per-subcarrier channel inverse to received symbols
// and tracks the residual common phase (CFO/SFO drift within a packet)
// using the four pilot tones, the standard OFDM receiver structure the
// paper relies on at the clients ("each client uses standard OFDM
// techniques to track the phase of the lead AP symbol by symbol", §5.3).
type Equalizer struct {
	h      []complex128  // per-bin channel estimate
	symIdx int           // pilot polarity counter
	common units.Radians // common phase applied to the latest symbol
	raw    units.Radians // unsmoothed common phase of the latest symbol
	// track smooths the per-symbol pilot phase: the real common phase
	// drifts slowly (residual CFO), while a single symbol's 4-pilot
	// estimate is noisy, so an EWMA with modest weight wins a couple of
	// dB of EVM at moderate SNR.
	track    complex128
	hasTrack bool
}

// cpeAlpha is the EWMA weight of a new pilot phase measurement.
const cpeAlpha = 0.5

// NewEqualizer builds an equalizer from a 64-bin channel estimate.
func NewEqualizer(h []complex128) (*Equalizer, error) {
	if len(h) != NFFT {
		return nil, fmt.Errorf("ofdm: channel estimate has %d bins, want %d", len(h), NFFT)
	}
	e := &Equalizer{h: append([]complex128(nil), h...)}
	return e, nil
}

// Symbol equalizes one received frequency-domain symbol (64 bins) and
// returns the 48 equalized data-subcarrier values. The pilot tones are
// used to estimate and remove the common phase error of this symbol before
// the data is returned.
func (e *Equalizer) Symbol(freq []complex128) ([]complex128, error) {
	out := make([]complex128, NData)
	if err := e.SymbolInto(out, freq); err != nil {
		return nil, err
	}
	return out, nil
}

// SymbolInto is Symbol with a caller-supplied destination of length NData;
// it allocates nothing. dst must not alias freq.
func (e *Equalizer) SymbolInto(dst, freq []complex128) error {
	if len(freq) != NFFT {
		return fmt.Errorf("ofdm: symbol has %d bins, want %d", len(freq), NFFT)
	}
	if len(dst) != NData {
		return fmt.Errorf("ofdm: destination holds %d values, want %d", len(dst), NData)
	}
	ref := PilotReference(e.symIdx)
	// Pilot-based common phase estimate: sum over pilots of
	// (rx / (h·ref)) weighted by |h|².
	var acc complex128
	for i, k := range PilotCarriers {
		b := Bin(k)
		expect := e.h[b] * ref[i]
		acc += freq[b] * cmplx.Conj(expect)
	}
	if a := cmplx.Abs(acc); a > 0 {
		acc /= complex(a, 0)
	}
	if !e.hasTrack {
		e.track = acc
		e.hasTrack = true
	} else {
		e.track = complex(cpeAlpha, 0)*acc + complex(1-cpeAlpha, 0)*e.track
		if a := cmplx.Abs(e.track); a > 0 {
			e.track /= complex(a, 0)
		}
	}
	cpe := cmplx.Phase(e.track)
	rot := cmplx.Exp(complex(0, -cpe))
	e.raw = units.Radians(cmplx.Phase(acc))

	for i, k := range DataCarriers {
		b := Bin(k)
		h := e.h[b]
		if h == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = freq[b] * rot / h
	}
	e.common = units.Radians(cpe)
	e.symIdx++
	return nil
}

// CommonPhase returns the smoothed common phase applied to the most recent
// symbol, in radians.
func (e *Equalizer) CommonPhase() units.Radians { return e.common }

// RawCommonPhase returns the unsmoothed single-symbol pilot phase of the
// most recent symbol — the quantity the phase-alignment experiments
// histogram.
func (e *Equalizer) RawCommonPhase() units.Radians { return e.raw }

// Channel returns the equalizer's channel estimate (shared slice; callers
// must not modify it).
func (e *Equalizer) Channel() []complex128 { return e.h }

// SNREstimate returns a per-data-subcarrier SNR estimate given equalized
// symbols and the hard decisions already made on them: the error vector
// power relative to unit signal power, inverted. It is the hook the
// effective-SNR rate selector uses when operating on real received frames.
func SNREstimate(equalized, decisions []complex128) (float64, error) {
	if len(equalized) != len(decisions) || len(equalized) == 0 {
		return 0, fmt.Errorf("ofdm: SNREstimate length mismatch")
	}
	var errP float64
	for i := range equalized {
		d := equalized[i] - decisions[i]
		errP += real(d)*real(d) + imag(d)*imag(d)
	}
	errP /= float64(len(equalized))
	if errP <= 0 {
		errP = 1e-12
	}
	return 1 / errP, nil
}
