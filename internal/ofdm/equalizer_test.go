package ofdm

import (
	"math"
	"math/rand"
	"megamimo/internal/units"
	"testing"

	"megamimo/internal/cmplxs"
	"megamimo/internal/rng"
)

// buildRxSymbol passes known data through a flat channel with a common
// phase offset and returns the received frequency bins.
func buildRxSymbol(t *testing.T, data []complex128, symIdx int, h complex128, cpe units.Radians, noise *rng.Source, nv float64) []complex128 {
	t.Helper()
	mod := NewModulator()
	sym, err := mod.Symbol(data, symIdx)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, len(sym))
	rot := h * cmplxs.Expi(cpe)
	for i := range sym {
		rx[i] = sym[i]*rot + noise.ComplexNormal(nv)
	}
	dem := NewDemodulator()
	freq, err := dem.Freq(rx)
	if err != nil {
		t.Fatal(err)
	}
	return freq
}

func TestEqualizerRemovesCommonPhase(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	noise := rng.New(2)
	h := make([]complex128, NFFT)
	gain := 0.8 - 0.3i
	for i := range h {
		h[i] = gain
	}
	eq, err := NewEqualizer(h)
	if err != nil {
		t.Fatal(err)
	}
	data := randQPSK(r, NData)
	// A constant 0.3 rad common phase on every symbol must vanish.
	for s := 0; s < 6; s++ {
		freq := buildRxSymbol(t, data, s, gain, 0.3, noise, 1e-6)
		out, err := eq.Symbol(freq)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			continue // tracker warm-up
		}
		for i := range out {
			if d := out[i] - data[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-3 {
				t.Fatalf("symbol %d subcarrier %d: residual %v", s, i, d)
			}
		}
	}
}

func TestEqualizerTracksPhaseRamp(t *testing.T) {
	// A slowly ramping common phase (residual CFO ≈ 0.03 rad/symbol) must
	// be tracked by the pilots without data errors.
	r := rand.New(rand.NewSource(3))
	noise := rng.New(4)
	h := make([]complex128, NFFT)
	for i := range h {
		h[i] = 1
	}
	eq, _ := NewEqualizer(h)
	for s := 0; s < 20; s++ {
		data := randQPSK(r, NData)
		cpe := units.Radians(0.03 * float64(s))
		freq := buildRxSymbol(t, data, s, 1, cpe, noise, 1e-5)
		out, err := eq.Symbol(freq)
		if err != nil {
			t.Fatal(err)
		}
		if s < 3 {
			continue // let the EWMA settle onto the ramp
		}
		for i := range out {
			if d := out[i] - data[i]; real(d)*real(d)+imag(d)*imag(d) > 0.05 {
				t.Fatalf("symbol %d: tracker lost the ramp (residual %v)", s, d)
			}
		}
	}
}

func TestEqualizerRawVsSmoothedPhase(t *testing.T) {
	// RawCommonPhase reflects each symbol alone; CommonPhase is smoothed.
	r := rand.New(rand.NewSource(5))
	noise := rng.New(6)
	h := make([]complex128, NFFT)
	for i := range h {
		h[i] = 1
	}
	eq, _ := NewEqualizer(h)
	// Alternate the true phase: raw should bounce, smoothed should sit
	// between.
	var raws, smooths []units.Radians
	for s := 0; s < 12; s++ {
		cpe := units.Radians(0)
		if s%2 == 1 {
			cpe = 0.2
		}
		freq := buildRxSymbol(t, randQPSK(r, NData), s, 1, cpe, noise, 1e-6)
		if _, err := eq.Symbol(freq); err != nil {
			t.Fatal(err)
		}
		raws = append(raws, eq.RawCommonPhase())
		smooths = append(smooths, eq.CommonPhase())
	}
	rawSpread := spread(raws[2:])
	smoothSpread := spread(smooths[2:])
	if smoothSpread >= rawSpread {
		t.Fatalf("smoothed spread %.3f not below raw %.3f", smoothSpread, rawSpread)
	}
}

func spread(xs []units.Radians) units.Radians {
	lo, hi := units.Radians(math.Inf(1)), units.Radians(math.Inf(-1))
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

func TestEqualizerRejectsWrongLengths(t *testing.T) {
	if _, err := NewEqualizer(make([]complex128, 32)); err == nil {
		t.Fatal("short channel accepted")
	}
	eq, _ := NewEqualizer(make([]complex128, NFFT))
	if _, err := eq.Symbol(make([]complex128, 10)); err == nil {
		t.Fatal("short symbol accepted")
	}
}

func TestEqualizerZeroChannelBins(t *testing.T) {
	// Bins with zero channel estimate must come out as zero, not Inf/NaN.
	h := make([]complex128, NFFT)
	eq, _ := NewEqualizer(h)
	freq := make([]complex128, NFFT)
	for i := range freq {
		freq[i] = 1
	}
	out, err := eq.Symbol(freq)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero-channel bin %d produced %v", i, v)
		}
	}
}

func TestSmoothChannelReducesNoise(t *testing.T) {
	src := rng.New(7)
	// True channel: smooth 3-tap response.
	taps := []complex128{1, 0.4i, -0.2}
	truth := (&fakeLink{taps}).freqResponse()
	noisy := make([]complex128, NFFT)
	nv := 0.02
	for _, k := range OccupiedCarriers() {
		noisy[Bin(k)] = truth[Bin(k)] + src.ComplexNormal(nv)
	}
	smoothed := append([]complex128(nil), noisy...)
	SmoothChannel(smoothed)
	var before, after float64
	for _, k := range OccupiedCarriers() {
		b := Bin(k)
		d1 := noisy[b] - truth[b]
		d2 := smoothed[b] - truth[b]
		before += real(d1)*real(d1) + imag(d1)*imag(d1)
		after += real(d2)*real(d2) + imag(d2)*imag(d2)
	}
	if after >= before*0.7 {
		t.Fatalf("smoothing reduced error only %.2fx", before/after)
	}
}

type fakeLink struct{ taps []complex128 }

func (f *fakeLink) freqResponse() []complex128 {
	out := make([]complex128, NFFT)
	for k := 0; k < NFFT; k++ {
		var acc complex128
		for m, tap := range f.taps {
			acc += tap * cmplxs.Expi(units.Radians(-2*math.Pi*float64(k*m)/NFFT))
		}
		out[k] = acc
	}
	return out
}
