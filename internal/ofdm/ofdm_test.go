package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func randQPSK(r *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	s := 1 / math.Sqrt2
	for i := range out {
		out[i] = complex(s*float64(2*r.Intn(2)-1), s*float64(2*r.Intn(2)-1))
	}
	return out
}

func TestDataCarrierLayout(t *testing.T) {
	if len(DataCarriers) != 48 {
		t.Fatalf("%d data carriers", len(DataCarriers))
	}
	seen := map[int]bool{}
	for _, k := range DataCarriers {
		if k == 0 || k < -26 || k > 26 {
			t.Fatalf("bad data carrier %d", k)
		}
		for _, p := range PilotCarriers {
			if k == p {
				t.Fatalf("data carrier %d collides with pilot", k)
			}
		}
		if seen[k] {
			t.Fatalf("duplicate carrier %d", k)
		}
		seen[k] = true
	}
}

func TestBinMapping(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 26: 26, -1: 63, -26: 38, -32: 32}
	for k, want := range cases {
		if got := Bin(k); got != want {
			t.Errorf("Bin(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestPilotPolarityFirstValues(t *testing.T) {
	// First scrambler bits with all-ones seed: 0,0,0,0,1,1,1,0 → +1 ×4, −1 ×3, +1.
	want := []float64{1, 1, 1, 1, -1, -1, -1, 1}
	for i, w := range want {
		if got := PilotPolarity(i); got != w {
			t.Fatalf("PilotPolarity(%d) = %v, want %v", i, got, w)
		}
	}
	if PilotPolarity(127) != PilotPolarity(0) {
		t.Fatal("pilot polarity not 127-periodic")
	}
}

func TestSymbolRoundTripCleanChannel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mod := NewModulator()
	dem := NewDemodulator()
	data := randQPSK(r, NData)
	sym, err := mod.Symbol(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != SymbolLen {
		t.Fatalf("symbol length %d", len(sym))
	}
	freq, err := dem.Freq(sym)
	if err != nil {
		t.Fatal(err)
	}
	got, pilots := DataAndPilots(freq)
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("data subcarrier %d: %v != %v", i, got[i], data[i])
		}
	}
	ref := PilotReference(0)
	for i := range pilots {
		if cmplx.Abs(pilots[i]-ref[i]) > 1e-9 {
			t.Fatalf("pilot %d: %v != %v", i, pilots[i], ref[i])
		}
	}
}

func TestCyclicPrefixIsCopyOfTail(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	mod := NewModulator()
	sym, _ := mod.Symbol(randQPSK(r, NData), 3)
	for i := 0; i < CPLen; i++ {
		if sym[i] != sym[NFFT+i] {
			t.Fatalf("CP sample %d is not a copy", i)
		}
	}
}

func TestSTFPeriodicity(t *testing.T) {
	stf := STF()
	if len(stf) != STFLen {
		t.Fatalf("STF length %d", len(stf))
	}
	for i := 0; i+STFPeriod < len(stf); i++ {
		if cmplx.Abs(stf[i]-stf[i+STFPeriod]) > 1e-9 {
			t.Fatalf("STF not 16-periodic at %d", i)
		}
	}
}

func TestLTFStructure(t *testing.T) {
	ltf := LTF()
	if len(ltf) != LTFLen {
		t.Fatalf("LTF length %d", len(ltf))
	}
	// Two identical long symbols.
	for i := 0; i < NFFT; i++ {
		if cmplx.Abs(ltf[LTFGuard+i]-ltf[LTFGuard+NFFT+i]) > 1e-9 {
			t.Fatalf("LTF symbols differ at %d", i)
		}
	}
	// Guard is the tail of the long symbol.
	for i := 0; i < LTFGuard; i++ {
		if cmplx.Abs(ltf[i]-ltf[LTFGuard+NFFT-LTFGuard+i]) > 1e-9 {
			t.Fatalf("LTF guard wrong at %d", i)
		}
	}
}

func TestLTFFreqHas52Tones(t *testing.T) {
	n := 0
	for _, v := range LTFFreq() {
		if v != 0 {
			if v != 1 && v != -1 {
				t.Fatalf("LTF tone %v not ±1", v)
			}
			n++
		}
	}
	if n != 52 {
		t.Fatalf("%d occupied LTF tones, want 52", n)
	}
}

// buildFrame concatenates preamble + nsym data symbols, returns samples and
// the per-symbol data.
func buildFrame(r *rand.Rand, nsym int) ([]complex128, [][]complex128) {
	mod := NewModulator()
	samples := append([]complex128(nil), Preamble()...)
	var data [][]complex128
	for s := 0; s < nsym; s++ {
		d := randQPSK(r, NData)
		data = append(data, d)
		sym, err := mod.Symbol(d, s)
		if err != nil {
			panic(err)
		}
		samples = append(samples, sym...)
	}
	return samples, data
}

func TestDetectCleanPacketAtKnownOffset(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	frame, _ := buildFrame(r, 2)
	pad := 300
	rx := make([]complex128, pad+len(frame)+100)
	copy(rx[pad:], frame)
	sync, err := Detect(rx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sync.PayloadStart != pad+PreambleLen {
		t.Fatalf("payload start %d, want %d", sync.PayloadStart, pad+PreambleLen)
	}
	if units.Abs(sync.CFO) > 1e-4 {
		t.Fatalf("phantom CFO %v", sync.CFO)
	}
}

func TestDetectRejectsNoise(t *testing.T) {
	s := rng.New(4)
	rx := s.ComplexNormalVec(make([]complex128, 2000), 1)
	if _, err := Detect(rx, 0.8); err == nil {
		t.Fatal("detected a packet in pure noise")
	}
}

func TestDetectEstimatesCFO(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, cfo := range []units.RadPerSample{0.002, -0.005, 0.02} {
		frame, _ := buildFrame(r, 2)
		pad := 123
		rx := make([]complex128, pad+len(frame)+50)
		copy(rx[pad:], frame)
		cmplxs.Rotate(rx, rx, 0.3, cfo)
		// Light noise.
		s := rng.New(6)
		for i := range rx {
			rx[i] += s.ComplexNormal(1e-4)
		}
		sync, err := Detect(rx, 0.5)
		if err != nil {
			t.Fatalf("cfo %v: %v", cfo, err)
		}
		if units.Abs(sync.CFO-cfo) > 2e-4 {
			t.Fatalf("cfo estimate %v, want %v", sync.CFO, cfo)
		}
	}
}

func TestDetectWithNoiseAndDelayRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := rng.New(8)
	for _, pad := range []int{64, 500, 1111} {
		frame, _ := buildFrame(r, 3)
		rx := make([]complex128, pad+len(frame)+64)
		copy(rx[pad:], frame)
		for i := range rx {
			rx[i] += s.ComplexNormal(0.01) // 20 dB SNR
		}
		sync, err := Detect(rx, 0.5)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		if d := sync.PayloadStart - (pad + PreambleLen); d < -1 || d > 1 {
			t.Fatalf("pad %d: payload start off by %d", pad, d)
		}
	}
}

func TestChannelEstimateFlatChannel(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	frame, _ := buildFrame(r, 1)
	gain := 0.7 - 0.4i
	rx := make([]complex128, 200+len(frame))
	for i, v := range frame {
		rx[200+i] = v * gain
	}
	sync, err := Detect(rx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := EstimateChannelLTF(rx, sync)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range OccupiedCarriers() {
		if cmplx.Abs(h[Bin(k)]-gain) > 1e-6 {
			t.Fatalf("h[%d] = %v, want %v", k, h[Bin(k)], gain)
		}
	}
}

func TestChannelEstimateMultipath(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	frame, _ := buildFrame(r, 1)
	taps := []complex128{0.8, 0, 0.3i, -0.1}
	conv := dsp.Convolve(frame, taps)
	rx := make([]complex128, 150+len(conv)+50)
	copy(rx[150:], conv)
	sync, err := Detect(rx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := EstimateChannelLTF(rx, sync)
	if err != nil {
		t.Fatal(err)
	}
	// Expected frequency response of the taps (within a timing-offset
	// phase ramp that Detect may introduce; compare magnitudes).
	ref := make([]complex128, NFFT)
	copy(ref, taps)
	H := dsp.FFT(ref)
	// Tolerance covers the estimator's deliberate cross-bin smoothing bias.
	for _, k := range OccupiedCarriers() {
		if math.Abs(cmplx.Abs(h[Bin(k)])-cmplx.Abs(H[Bin(k)])) > 0.06 {
			t.Fatalf("|h[%d]| = %v, want %v", k, cmplx.Abs(h[Bin(k)]), cmplx.Abs(H[Bin(k)]))
		}
	}
}

func TestEqualizerRecoversDataThroughChannelAndCFO(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	nsym := 6
	frame, data := buildFrame(r, nsym)
	taps := []complex128{0.9, 0.2 - 0.1i}
	conv := dsp.Convolve(frame, taps)
	rx := make([]complex128, 100+len(conv)+10)
	copy(rx[100:], conv)
	cfo := units.RadPerSample(0.001)
	cmplxs.Rotate(rx, rx, 0.1, cfo)
	noise := rng.New(12)
	for i := range rx {
		rx[i] += noise.ComplexNormal(1e-4)
	}

	sync, err := Detect(rx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := EstimateChannelLTF(rx, sync)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := NewEqualizer(h)
	if err != nil {
		t.Fatal(err)
	}
	dem := NewDemodulator()
	// Derotate payload using estimated CFO, referenced like the channel
	// estimate (phase 0 at each symbol handled by pilot tracking).
	payload := cmplxs.Clone(rx[sync.PayloadStart:])
	cmplxs.Rotate(payload, payload, units.PhaseAdvance(-sync.CFO, units.Samples(sync.PayloadStart)), -sync.CFO)
	for sidx := 0; sidx < nsym; sidx++ {
		freq, err := dem.Freq(payload[sidx*SymbolLen:])
		if err != nil {
			t.Fatal(err)
		}
		got, err := eq.Symbol(freq)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if cmplx.Abs(got[i]-data[sidx][i]) > 0.2 {
				t.Fatalf("symbol %d subcarrier %d: %v vs %v", sidx, i, got[i], data[sidx][i])
			}
		}
	}
}

func TestSNREstimate(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	clean := randQPSK(r, 480)
	noisy := make([]complex128, len(clean))
	nv := 0.01
	s := rng.New(14)
	for i := range clean {
		noisy[i] = clean[i] + s.ComplexNormal(nv)
	}
	snr, err := SNREstimate(noisy, clean)
	if err != nil {
		t.Fatal(err)
	}
	if db := 10 * math.Log10(snr); math.Abs(db-20) > 1.5 {
		t.Fatalf("SNR estimate %v dB, want ≈20", db)
	}
	if _, err := SNREstimate(noisy[:1], clean); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkModulatorSymbol(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	mod := NewModulator()
	data := randQPSK(r, NData)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mod.Symbol(data, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	frame, _ := buildFrame(r, 4)
	rx := make([]complex128, 400+len(frame))
	copy(rx[400:], frame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(rx, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
