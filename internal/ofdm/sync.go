package ofdm

import (
	"errors"
	"math"
	"math/cmplx"

	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
	"megamimo/internal/units"
)

// ErrNoPacket is returned when no preamble is detected in the sample
// stream.
var ErrNoPacket = errors.New("ofdm: no packet detected")

// Sync is the result of preamble acquisition on a received stream.
type Sync struct {
	// PayloadStart is the index of the first sample after the preamble
	// (the first data-symbol cyclic prefix).
	PayloadStart int
	// CFO is the estimated carrier frequency offset in radians per sample.
	CFO units.RadPerSample
	// LTFStart is the index where the LTF guard interval begins.
	LTFStart int
	// Metric is the peak normalized detection metric in [0, 1].
	Metric float64
}

// Detect locates a legacy preamble in rx. It uses the classic two-stage
// approach: a normalized lag-16 autocorrelation plateau finds the STF and
// yields the coarse CFO; cross-correlation with the known LTF refines
// timing; the lag-64 correlation across the two LTF repetitions refines the
// CFO. threshold is the minimum normalized plateau metric (0.5 is a robust
// default at SNR ≥ 0 dB).
func Detect(rx []complex128, threshold float64) (*Sync, error) {
	if len(rx) < PreambleLen+SymbolLen {
		return nil, ErrNoPacket
	}
	const win = 64
	auto := dsp.AutoCorrelateLag(rx, STFPeriod, win)
	if auto == nil {
		return nil, ErrNoPacket
	}
	// Normalize by windowed energy to get a scale-free metric.
	energy := make([]float64, len(rx))
	for i, v := range rx {
		energy[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	eAvg := dsp.MovingAverage(energy, win+STFPeriod)
	// Take the FIRST plateau that clears the threshold (scanning to its
	// local maximum within one STF length), not the global best — a later
	// frame in the same stream may correlate more strongly, but acquisition
	// must lock to the earliest packet.
	coarse, best := -1, 0.0
	metric := func(i int) float64 {
		e := eAvg[i] * float64(win+STFPeriod)
		if e <= 0 {
			return 0
		}
		return cmplx.Abs(auto[i]) / (e * float64(win) / float64(win+STFPeriod))
	}
	limit := len(auto)
	if len(eAvg) < limit {
		limit = len(eAvg)
	}
	for i := 0; i < limit; i++ {
		m := metric(i)
		if m <= threshold {
			continue
		}
		best, coarse = m, i
		for j := i + 1; j < limit && j < i+STFLen; j++ {
			if mj := metric(j); mj > best {
				best, coarse = mj, j
			}
		}
		break
	}
	if coarse < 0 {
		return nil, ErrNoPacket
	}
	// Coarse CFO from the STF plateau: phase of lag-16 correlation.
	coarseCFO := units.RadPerSample(-cmplx.Phase(auto[coarse]) / float64(STFPeriod))

	// Fine timing: cross-correlate a derotated window with the known LTF
	// long symbol. Search around the expected LTF location.
	ltfRef := LTF()[LTFGuard : LTFGuard+NFFT]
	searchLo := coarse
	searchHi := coarse + STFLen + LTFGuard + 3*NFFT
	if searchHi+NFFT > len(rx) {
		searchHi = len(rx) - NFFT
	}
	if searchHi <= searchLo {
		return nil, ErrNoPacket
	}
	win2 := cmplxs.Clone(rx[searchLo:min(searchHi+NFFT, len(rx))])
	cmplxs.Rotate(win2, win2, 0, -coarseCFO)
	xc := dsp.CrossCorrelate(win2, ltfRef)
	// The LTF long symbol appears twice, 64 samples apart; find the pair
	// with the largest combined magnitude.
	bestPos, bestVal := -1, 0.0
	for i := 0; i+NFFT < len(xc); i++ {
		v := cmplx.Abs(xc[i]) + cmplx.Abs(xc[i+NFFT])
		if v > bestVal {
			bestVal, bestPos = v, i
		}
	}
	if bestPos < 0 {
		return nil, ErrNoPacket
	}
	ltf1 := searchLo + bestPos // start of first long symbol
	ltfStart := ltf1 - LTFGuard
	payload := ltf1 + 2*NFFT
	if payload+SymbolLen > len(rx) {
		return nil, ErrNoPacket
	}
	// Fine CFO: lag-64 correlation between the two long symbols (on the
	// raw, un-derotated samples so it measures total CFO).
	var acc complex128
	for i := 0; i < NFFT; i++ {
		acc += rx[ltf1+i] * cmplx.Conj(rx[ltf1+NFFT+i])
	}
	fineCFO := units.RadPerSample(-cmplx.Phase(acc) / float64(NFFT))
	// fineCFO is unambiguous only within ±π/64 rad/sample; fold the coarse
	// estimate's integer part in: count how many full 2π turns the
	// coarse/fine disagreement accumulates over one FFT length.
	k := math.Round(units.Ratio(units.PhaseAdvance(coarseCFO-fineCFO, NFFT), 2*math.Pi))
	cfo := fineCFO + units.RadiansOver(units.Radians(2*math.Pi*k), NFFT)

	return &Sync{
		PayloadStart: payload,
		CFO:          cfo,
		LTFStart:     ltfStart,
		Metric:       best,
	}, nil
}

// ltfFreqRef is the immutable LTF reference shared by every channel
// estimate, so per-frame decodes don't rebuild it.
var ltfFreqRef = LTFFreq()

// EstimateChannelLTF produces a least-squares channel estimate from the two
// long training symbols. rx must contain the stream, sync the acquisition
// result; the returned slice has one complex gain per FFT bin (zero outside
// the occupied carriers). The estimate averages both LTF repetitions after
// CFO derotation.
func EstimateChannelLTF(rx []complex128, sync *Sync) ([]complex128, error) {
	ltf1 := sync.LTFStart + LTFGuard
	if ltf1+2*NFFT > len(rx) {
		return nil, ErrNoPacket
	}
	plan := dsp.MustPlanFor(NFFT)
	ref := ltfFreqRef
	h := make([]complex128, NFFT)
	buf := make([]complex128, NFFT)
	freq := make([]complex128, NFFT)
	for rep := 0; rep < 2; rep++ {
		start := ltf1 + rep*NFFT
		copy(buf, rx[start:start+NFFT])
		// Derotate CFO with the phase referenced at the first LTF sample
		// (not the window origin): the reference lever arm multiplying the
		// CFO estimation error is then ≤ one symbol, which is what lets
		// repeated channel snapshots (MegaMIMO's slave ratio) compare
		// phases to millirad accuracy.
		cmplxs.Rotate(buf, buf, units.PhaseAdvance(-sync.CFO, units.Samples(start-ltf1)), -sync.CFO)
		plan.Forward(freq, buf)
		scale := complex(1/math.Sqrt(NFFT), 0)
		for k := range freq {
			if ref[k] == 0 {
				continue
			}
			h[k] += freq[k] * scale / ref[k]
		}
	}
	for k := range h {
		h[k] /= 2
	}
	SmoothChannel(h)
	return h, nil
}

// SmoothChannel applies a [1 2 1]/4 kernel across adjacent occupied
// carriers of a 64-bin channel estimate, in place. An indoor channel a few
// taps long varies slowly across subcarriers (coherence ≳ 16 bins), so the
// smoothing removes ~4 dB of estimation noise while the curvature bias
// stays 30+ dB below the channel — a standard 802.11 receiver denoiser.
// MegaMIMO clients apply it to their per-AP measurement-phase estimates
// too, which deepens the zero-forcing nulls on ill-conditioned bins.
func SmoothChannel(h []complex128) {
	ks := OccupiedCarriers()
	orig := make([]complex128, len(h))
	copy(orig, h)
	occupied := make(map[int]bool, len(ks))
	for _, k := range ks {
		occupied[k] = true
	}
	for _, k := range ks {
		acc := 2 * orig[Bin(k)]
		w := 2.0
		if occupied[k-1] {
			acc += orig[Bin(k-1)]
			w++
		}
		if occupied[k+1] {
			acc += orig[Bin(k+1)]
			w++
		}
		h[Bin(k)] = acc / complex(w, 0)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
