// Package ofdm implements the 802.11a/g-style OFDM layer the MegaMIMO PHY
// rides on: the 64-subcarrier grid (48 data + 4 pilot tones), short and
// long training preambles, packet detection, carrier-frequency-offset
// estimation, least-squares channel estimation, and a pilot-tracking
// equalizer.
package ofdm

import (
	"fmt"
	"math"

	"megamimo/internal/dsp"
)

// Grid constants for the 20 MHz-class 802.11 OFDM numerology. The same
// numerology runs at 10 Msample/s in the USRP testbed — only the symbol
// duration changes, not the structure.
const (
	NFFT      = 64 // FFT size
	CPLen     = 16 // cyclic prefix samples
	SymbolLen = NFFT + CPLen
	NData     = 48 // data subcarriers per symbol
	NPilot    = 4  // pilot subcarriers per symbol
)

// PilotCarriers are the logical pilot subcarrier indices.
var PilotCarriers = [NPilot]int{-21, -7, 7, 21}

// pilotBase are the pilot values before polarity modulation.
var pilotBase = [NPilot]complex128{1, 1, 1, -1}

// DataCarriers lists the 48 logical data subcarrier indices in increasing
// order (−26…26 minus DC and pilots).
var DataCarriers = buildDataCarriers()

func buildDataCarriers() [NData]int {
	var out [NData]int
	n := 0
	for k := -26; k <= 26; k++ {
		if k == 0 || k == -21 || k == -7 || k == 7 || k == 21 {
			continue
		}
		out[n] = k
		n++
	}
	if n != NData {
		panic("ofdm: data carrier construction broken")
	}
	return out
}

// Bin converts a logical subcarrier index (−32…31) to an FFT bin (0…63).
func Bin(k int) int { return (k + NFFT) % NFFT }

// pilotPolarity is the 127-periodic pilot polarity sequence p_n from
// 802.11-1999 §17.3.5.9 (the scrambler sequence mapped 0→+1, 1→−1).
var pilotPolarity = buildPilotPolarity()

func buildPilotPolarity() [127]float64 {
	// LFSR x^7+x^4+1 seeded all-ones, identical to the scrambler.
	var out [127]float64
	state := 0x7f
	for i := range out {
		b := ((state >> 6) ^ (state >> 3)) & 1
		state = ((state << 1) | b) & 0x7f
		if b == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// PilotPolarity returns p_n for OFDM symbol index n (n counts data symbols
// from the start of the frame; the SIGNAL symbol is index 0 in 802.11 but
// this PHY numbers its own symbols from 0).
func PilotPolarity(n int) float64 { return pilotPolarity[n%127] }

// Modulator converts 48-point data-subcarrier vectors into 80-sample
// time-domain OFDM symbols. It is allocation-free per symbol after reuse
// of the internal scratch buffers; Symbol returns freshly allocated output.
type Modulator struct {
	plan    *dsp.FFTPlan
	freq    []complex128
	scratch []complex128
}

// NewModulator returns a Modulator.
func NewModulator() *Modulator {
	return &Modulator{
		plan:    dsp.MustPlanFor(NFFT),
		freq:    make([]complex128, NFFT),
		scratch: make([]complex128, NFFT),
	}
}

// Symbol builds one OFDM symbol: data is the 48 data-subcarrier values,
// symIdx selects the pilot polarity. The output is CP + body, 80 samples,
// scaled so that average sample power ≈ average subcarrier power × (52/64).
func (m *Modulator) Symbol(data []complex128, symIdx int) ([]complex128, error) {
	if len(data) != NData {
		return nil, fmt.Errorf("ofdm: %d data subcarriers, want %d", len(data), NData)
	}
	for i := range m.freq {
		m.freq[i] = 0
	}
	for i, k := range DataCarriers {
		m.freq[Bin(k)] = data[i]
	}
	p := PilotPolarity(symIdx)
	for i, k := range PilotCarriers {
		m.freq[Bin(k)] = pilotBase[i] * complex(p, 0)
	}
	return m.symbolFromFreq(), nil
}

// RawSymbol builds an OFDM symbol from a full 64-bin frequency-domain
// specification (already including pilots or training values). Used for
// preambles and channel-measurement symbols.
func (m *Modulator) RawSymbol(freq []complex128) ([]complex128, error) {
	out := make([]complex128, SymbolLen)
	if err := m.RawSymbolInto(out, freq); err != nil {
		return nil, err
	}
	return out, nil
}

// RawSymbolInto is RawSymbol with a caller-supplied destination of length ≥
// SymbolLen; it allocates nothing, which is what the joint-transmission hot
// path needs (one call per symbol per AP antenna per stream).
func (m *Modulator) RawSymbolInto(dst, freq []complex128) error {
	if len(freq) != NFFT {
		return fmt.Errorf("ofdm: %d bins, want %d", len(freq), NFFT)
	}
	if len(dst) < SymbolLen {
		return fmt.Errorf("ofdm: destination holds %d samples, want ≥ %d", len(dst), SymbolLen)
	}
	copy(m.freq, freq)
	m.symbolFromFreqInto(dst)
	return nil
}

func (m *Modulator) symbolFromFreq() []complex128 {
	out := make([]complex128, SymbolLen)
	m.symbolFromFreqInto(out)
	return out
}

func (m *Modulator) symbolFromFreqInto(dst []complex128) {
	m.plan.Inverse(m.scratch, m.freq)
	// IFFT of unit-power subcarriers yields samples with power 52/64²;
	// rescale by √NFFT so occupied-carrier power maps 1:1 to sample power
	// (times occupancy fraction). This keeps SNR bookkeeping simple.
	scale := complex(math.Sqrt(NFFT), 0)
	for i := 0; i < NFFT; i++ {
		m.scratch[i] *= scale
	}
	copy(dst[CPLen:SymbolLen], m.scratch)
	copy(dst[:CPLen], m.scratch[NFFT-CPLen:])
}

// Demodulator converts received 80-sample symbols back to the frequency
// domain.
type Demodulator struct {
	plan    *dsp.FFTPlan
	scratch []complex128
}

// NewDemodulator returns a Demodulator.
func NewDemodulator() *Demodulator {
	return &Demodulator{plan: dsp.MustPlanFor(NFFT), scratch: make([]complex128, NFFT)}
}

// Freq returns the 64 frequency bins of one received symbol (CP stripped).
// samples must hold at least SymbolLen samples; the first CPLen are the
// cyclic prefix.
func (d *Demodulator) Freq(samples []complex128) ([]complex128, error) {
	out := make([]complex128, NFFT)
	if err := d.FreqInto(out, samples); err != nil {
		return nil, err
	}
	return out, nil
}

// FreqInto is Freq with a caller-supplied destination of length ≥ NFFT; it
// allocates nothing. dst must not alias samples.
func (d *Demodulator) FreqInto(dst, samples []complex128) error {
	if len(samples) < SymbolLen {
		return fmt.Errorf("ofdm: %d samples, want ≥ %d", len(samples), SymbolLen)
	}
	if len(dst) < NFFT {
		return fmt.Errorf("ofdm: destination holds %d bins, want ≥ %d", len(dst), NFFT)
	}
	d.plan.Forward(d.scratch, samples[CPLen:SymbolLen])
	scale := complex(1/math.Sqrt(NFFT), 0)
	for i := 0; i < NFFT; i++ {
		dst[i] = d.scratch[i] * scale
	}
	return nil
}

// FreqBatchInto demodulates count consecutive symbols starting at samples
// into dst (count×NFFT bins, symbol s at dst[s*NFFT:]): the CP-stripped
// symbol bodies are packed contiguously into dst and transformed with a
// single batched FFT, so a whole frame's data field demodulates in one
// call. Per-bin results are bit-identical to count FreqInto calls. dst must
// not alias samples.
func (d *Demodulator) FreqBatchInto(dst, samples []complex128, count int) error {
	if count <= 0 {
		return fmt.Errorf("ofdm: batch of %d symbols", count)
	}
	if len(samples) < count*SymbolLen {
		return fmt.Errorf("ofdm: %d samples, want ≥ %d", len(samples), count*SymbolLen)
	}
	if len(dst) < count*NFFT {
		return fmt.Errorf("ofdm: destination holds %d bins, want ≥ %d", len(dst), count*NFFT)
	}
	for s := 0; s < count; s++ {
		copy(dst[s*NFFT:(s+1)*NFFT], samples[s*SymbolLen+CPLen:(s+1)*SymbolLen])
	}
	d.plan.ForwardBatch(dst[:count*NFFT], dst[:count*NFFT])
	scale := complex(1/math.Sqrt(NFFT), 0)
	for i := range dst[:count*NFFT] {
		dst[i] *= scale
	}
	return nil
}

// DataAndPilots splits a 64-bin frequency vector into the 48 data values
// and 4 pilot values (in PilotCarriers order).
func DataAndPilots(freq []complex128) (data [NData]complex128, pilots [NPilot]complex128) {
	for i, k := range DataCarriers {
		data[i] = freq[Bin(k)]
	}
	for i, k := range PilotCarriers {
		pilots[i] = freq[Bin(k)]
	}
	return data, pilots
}

// PilotReference returns the expected pilot values for symbol index n.
func PilotReference(n int) [NPilot]complex128 {
	p := complex(PilotPolarity(n), 0)
	var out [NPilot]complex128
	for i := range pilotBase {
		out[i] = pilotBase[i] * p
	}
	return out
}

// OccupiedCarriers returns all 52 occupied logical subcarrier indices
// (data + pilots) in increasing order.
func OccupiedCarriers() []int {
	out := make([]int, 0, NData+NPilot)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}
