// Package rng centralizes the reproducible randomness the simulator uses:
// complex Gaussians for channels and noise, Rayleigh-faded taps, and a
// deterministic sub-stream splitter so that independent components (each
// oscillator, each link) draw from independent but replayable sequences.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source for one simulation component.
type Source struct {
	r         *rand.Rand
	splitBase uint64 // lazy hidden draw backing Split; see base()
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child Source labeled by id. Children with
// different ids (or from parents with different seeds) are decorrelated via
// a 64-bit mix, and the parent's sequence is not consumed.
func (s *Source) Split(id uint64) *Source {
	// splitmix64-style finalizer over (parent seed draw, id).
	z := uint64(s.base()) ^ (id * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(int64(z))
}

// base returns a stable per-source value used by Split without consuming
// the main stream.
func (s *Source) base() uint64 {
	// A fresh rand.Rand from the same seed yields the same first value, so
	// peeking by cloning would be wasteful; instead we keep a hidden draw.
	// We derive it once, lazily.
	if s.splitBase == 0 {
		s.splitBase = s.r.Uint64() | 1
	}
	return s.splitBase
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Norm returns a standard normal draw.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// ComplexNormal returns a circularly symmetric complex Gaussian with the
// given total variance (E|x|² = variance), i.e. each component has
// variance/2.
func (s *Source) ComplexNormal(variance float64) complex128 {
	sd := math.Sqrt(variance / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// ComplexNormalVec fills dst with iid circular complex Gaussians of the
// given total variance and returns dst.
func (s *Source) ComplexNormalVec(dst []complex128, variance float64) []complex128 {
	sd := math.Sqrt(variance / 2)
	for i := range dst {
		dst[i] = complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
	}
	return dst
}

// Rayleigh returns a Rayleigh-distributed magnitude with scale sigma
// (mode sigma; mean sigma·sqrt(π/2)).
func (s *Source) Rayleigh(sigma float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// PhaseUniform returns a uniform phase in [-π, π).
func (s *Source) PhaseUniform() float64 { return s.Uniform(-math.Pi, math.Pi) }

// Exp returns an exponential draw with the given mean (0 when mean <= 0),
// the interarrival law of Poisson traffic.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto draw with shape alpha on [xm, hi] by
// inverse-CDF sampling — the heavy-tailed file-size law of web and video
// workloads. Degenerate parameters collapse to xm.
func (s *Source) Pareto(alpha, xm, hi float64) float64 {
	if alpha <= 0 || xm <= 0 || hi <= xm {
		return xm
	}
	u := s.r.Float64()
	// F(x) = (1 - (xm/x)^α) / (1 - (xm/hi)^α) on [xm, hi].
	r := math.Pow(xm/hi, alpha)
	x := xm / math.Pow(1-u*(1-r), 1/alpha)
	if x > hi {
		x = hi
	}
	return x
}

// BoundedParetoMean returns the expectation of the Pareto(alpha, xm, hi)
// law above, used to convert a target bit rate into a mean interarrival
// time for heavy-tailed file workloads.
func BoundedParetoMean(alpha, xm, hi float64) float64 {
	if alpha <= 0 || xm <= 0 || hi <= xm {
		return xm
	}
	r := math.Pow(xm/hi, alpha)
	if math.Abs(alpha-1) < 1e-9 {
		return xm * math.Log(hi/xm) / (1 - r)
	}
	return math.Pow(xm, alpha) / (1 - r) * alpha / (alpha - 1) *
		(math.Pow(xm, 1-alpha) - math.Pow(hi, 1-alpha))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Bytes fills b with random bytes and returns it.
func (s *Source) Bytes(b []byte) []byte {
	s.r.Read(b)
	return b
}

// Bits fills b with random 0/1 values and returns it.
func (s *Source) Bits(b []byte) []byte {
	for i := range b {
		b[i] = byte(s.r.Intn(2))
	}
	return b
}
