// Package rng centralizes the reproducible randomness the simulator uses:
// complex Gaussians for channels and noise, Rayleigh-faded taps, and a
// deterministic sub-stream splitter so that independent components (each
// oscillator, each link) draw from independent but replayable sequences.
//
// Every Source is explicitly snapshotable: State captures the complete
// generator state (feedback register, byte-read carry, split base) and
// Restore resumes the exact draw position, so a checkpointed simulation
// replays the same stream it would have produced uninterrupted. The
// underlying generator is bit-identical to math/rand's, keeping all
// golden streams unchanged.
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// Source is a deterministic random source for one simulation component.
type Source struct {
	src *lfsr
	// r provides the distribution layer (ziggurat normals, unbiased Intn,
	// Perm) over src. *rand.Rand keeps no state of its own between calls
	// apart from the Read carry, which Bytes reimplements below, so
	// snapshotting src (+ the carry) captures the full stream position.
	r *rand.Rand
	// readVal / readPos carry the unconsumed remainder of the last Int63
	// drawn by Bytes, mirroring math/rand's Read so the byte stream stays
	// identical to the pre-snapshot implementation.
	readVal   int64
	readPos   int8
	splitBase uint64 // lazy hidden draw backing Split; see base()
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	src := &lfsr{}
	src.Seed(seed)
	return &Source{src: src, r: rand.New(src)}
}

// State is the serializable snapshot of a Source: the full feedback
// register with its cursors, the Bytes carry, and the split base. A
// restored Source produces the identical continuation of every draw
// sequence (Float64, Norm, Bytes, Split, ...).
type State struct {
	Tap       int     `json:"tap"`
	Feed      int     `json:"feed"`
	Vec       []int64 `json:"vec"`
	ReadVal   int64   `json:"read_val,omitempty"`
	ReadPos   int8    `json:"read_pos,omitempty"`
	SplitBase uint64  `json:"split_base,omitempty"`
}

// State snapshots the complete generator state.
func (s *Source) State() State {
	vec := make([]int64, lfsrLen)
	copy(vec, s.src.vec[:])
	return State{
		Tap:       s.src.tap,
		Feed:      s.src.feed,
		Vec:       vec,
		ReadVal:   s.readVal,
		ReadPos:   s.readPos,
		SplitBase: s.splitBase,
	}
}

// Restore overwrites the Source with a previously captured State.
func (s *Source) Restore(st State) error {
	if len(st.Vec) != lfsrLen {
		return fmt.Errorf("rng: restore: register has %d words, want %d", len(st.Vec), lfsrLen)
	}
	if st.Tap < 0 || st.Tap >= lfsrLen || st.Feed < 0 || st.Feed >= lfsrLen {
		return fmt.Errorf("rng: restore: cursors (tap=%d, feed=%d) out of range [0, %d)", st.Tap, st.Feed, lfsrLen)
	}
	if st.ReadPos < 0 || st.ReadPos > 7 {
		return fmt.Errorf("rng: restore: read carry position %d out of range [0, 7]", st.ReadPos)
	}
	s.src.tap = st.Tap
	s.src.feed = st.Feed
	copy(s.src.vec[:], st.Vec)
	s.readVal = st.ReadVal
	s.readPos = st.ReadPos
	s.splitBase = st.SplitBase
	return nil
}

// Split derives an independent child Source labeled by id. Children with
// different ids (or from parents with different seeds) are decorrelated via
// a 64-bit mix, and the parent's sequence is not consumed.
func (s *Source) Split(id uint64) *Source {
	// splitmix64-style finalizer over (parent seed draw, id).
	z := uint64(s.base()) ^ (id * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(int64(z))
}

// base returns a stable per-source value used by Split without consuming
// the main stream.
func (s *Source) base() uint64 {
	// A fresh generator from the same seed yields the same first value, so
	// peeking by cloning would be wasteful; instead we keep a hidden draw.
	// We derive it once, lazily.
	if s.splitBase == 0 {
		s.splitBase = s.r.Uint64() | 1
	}
	return s.splitBase
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Norm returns a standard normal draw.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// ComplexNormal returns a circularly symmetric complex Gaussian with the
// given total variance (E|x|² = variance), i.e. each component has
// variance/2.
func (s *Source) ComplexNormal(variance float64) complex128 {
	sd := math.Sqrt(variance / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// ComplexNormalVec fills dst with iid circular complex Gaussians of the
// given total variance and returns dst.
func (s *Source) ComplexNormalVec(dst []complex128, variance float64) []complex128 {
	sd := math.Sqrt(variance / 2)
	for i := range dst {
		dst[i] = complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
	}
	return dst
}

// Rayleigh returns a Rayleigh-distributed magnitude with scale sigma
// (mode sigma; mean sigma·sqrt(π/2)).
func (s *Source) Rayleigh(sigma float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// PhaseUniform returns a uniform phase in [-π, π).
func (s *Source) PhaseUniform() float64 { return s.Uniform(-math.Pi, math.Pi) }

// Exp returns an exponential draw with the given mean (0 when mean <= 0),
// the interarrival law of Poisson traffic.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto draw with shape alpha on [xm, hi] by
// inverse-CDF sampling — the heavy-tailed file-size law of web and video
// workloads. Degenerate parameters collapse to xm.
func (s *Source) Pareto(alpha, xm, hi float64) float64 {
	if alpha <= 0 || xm <= 0 || hi <= xm {
		return xm
	}
	u := s.r.Float64()
	// F(x) = (1 - (xm/x)^α) / (1 - (xm/hi)^α) on [xm, hi].
	r := math.Pow(xm/hi, alpha)
	x := xm / math.Pow(1-u*(1-r), 1/alpha)
	if x > hi {
		x = hi
	}
	return x
}

// BoundedParetoMean returns the expectation of the Pareto(alpha, xm, hi)
// law above, used to convert a target bit rate into a mean interarrival
// time for heavy-tailed file workloads.
func BoundedParetoMean(alpha, xm, hi float64) float64 {
	if alpha <= 0 || xm <= 0 || hi <= xm {
		return xm
	}
	r := math.Pow(xm/hi, alpha)
	if math.Abs(alpha-1) < 1e-9 {
		return xm * math.Log(hi/xm) / (1 - r)
	}
	return math.Pow(xm, alpha) / (1 - r) * alpha / (alpha - 1) *
		(math.Pow(xm, 1-alpha) - math.Pow(hi, 1-alpha))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Bytes fills b with random bytes and returns it. Each Int63 draw yields
// seven bytes, little-end first, with the remainder carried to the next
// call — the exact byte stream of math/rand's Read, but with the carry in
// snapshotable Source state.
func (s *Source) Bytes(b []byte) []byte {
	pos, val := s.readPos, s.readVal
	for i := range b {
		if pos == 0 {
			val = s.src.Int63()
			pos = 7
		}
		b[i] = byte(val)
		val >>= 8
		pos--
	}
	s.readPos, s.readVal = pos, val
	return b
}

// Bits fills b with random 0/1 values and returns it.
func (s *Source) Bits(b []byte) []byte {
	for i := range b {
		b[i] = byte(s.r.Intn(2))
	}
	return b
}
