package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	a1 := New(7).Split(1)
	a2 := New(7).Split(1)
	b := New(7).Split(2)
	same, diff := 0, 0
	for i := 0; i < 50; i++ {
		x1, x2, y := a1.Float64(), a2.Float64(), b.Float64()
		if x1 == x2 {
			same++
		}
		if x1 != y {
			diff++
		}
	}
	if same != 50 {
		t.Fatalf("Split(1) not deterministic: %d/50 equal", same)
	}
	if diff < 45 {
		t.Fatalf("Split(1) and Split(2) look correlated: only %d/50 differ", diff)
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(3) // b never splits
	// First Split consumes the hidden base draw, so compare a fresh pair
	// that both split.
	_ = b.Split(4)
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split changed parent stream inconsistently")
		}
	}
}

func TestComplexNormalStats(t *testing.T) {
	s := New(1)
	const n = 200000
	var sumRe, sumIm, sumP float64
	for i := 0; i < n; i++ {
		v := s.ComplexNormal(2.0)
		sumRe += real(v)
		sumIm += imag(v)
		sumP += real(v)*real(v) + imag(v)*imag(v)
	}
	if m := sumRe / n; math.Abs(m) > 0.02 {
		t.Fatalf("mean(re) = %v", m)
	}
	if m := sumIm / n; math.Abs(m) > 0.02 {
		t.Fatalf("mean(im) = %v", m)
	}
	if p := sumP / n; math.Abs(p-2.0) > 0.05 {
		t.Fatalf("E|x|² = %v, want 2.0", p)
	}
}

func TestComplexNormalVec(t *testing.T) {
	s := New(2)
	v := s.ComplexNormalVec(make([]complex128, 50000), 1.0)
	var p float64
	for _, x := range v {
		p += real(x)*real(x) + imag(x)*imag(x)
	}
	if got := p / float64(len(v)); math.Abs(got-1.0) > 0.05 {
		t.Fatalf("vec power = %v", got)
	}
}

func TestRayleighMean(t *testing.T) {
	s := New(3)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Rayleigh(1.0)
	}
	want := math.Sqrt(math.Pi / 2)
	if got := sum / n; math.Abs(got-want) > 0.02 {
		t.Fatalf("Rayleigh mean = %v, want %v", got, want)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestPhaseUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		p := s.PhaseUniform()
		if p < -math.Pi || p >= math.Pi {
			t.Fatalf("phase out of range: %v", p)
		}
	}
}

func TestBits(t *testing.T) {
	s := New(6)
	b := s.Bits(make([]byte, 10000))
	ones := 0
	for _, v := range b {
		if v > 1 {
			t.Fatalf("Bits produced %d", v)
		}
		ones += int(v)
	}
	if ones < 4700 || ones > 5300 {
		t.Fatalf("Bits bias: %d/10000 ones", ones)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %v", f)
	}
}

func TestPerm(t *testing.T) {
	s := New(10)
	p := s.Perm(16)
	seen := make([]bool, 16)
	for _, v := range p {
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(3.5)
		if v < 0 {
			t.Fatalf("Exp drew negative %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-3.5) > 0.05 {
		t.Fatalf("Exp mean = %v, want 3.5", got)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("degenerate Exp mean must return 0")
	}
}

func TestParetoBoundsAndMean(t *testing.T) {
	s := New(12)
	const (
		alpha = 1.2
		xm    = 1000.0
		hi    = 100000.0
		n     = 200000
	)
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Pareto(alpha, xm, hi)
		if v < xm || v > hi {
			t.Fatalf("Pareto draw %v outside [%v, %v]", v, xm, hi)
		}
		sum += v
	}
	want := BoundedParetoMean(alpha, xm, hi)
	if got := sum / n; math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Pareto mean = %v, want %v (±5%%)", got, want)
	}
	if s.Pareto(0, xm, hi) != xm || s.Pareto(alpha, xm, xm) != xm {
		t.Fatal("degenerate Pareto must collapse to xm")
	}
}

func TestBoundedParetoMeanAlphaOne(t *testing.T) {
	// The α→1 closed form must join continuously with the general branch.
	general := BoundedParetoMean(1.001, 10, 1000)
	atOne := BoundedParetoMean(1, 10, 1000)
	if math.Abs(general-atOne)/atOne > 0.02 {
		t.Fatalf("α=1 branch discontinuous: %v vs %v", atOne, general)
	}
}
