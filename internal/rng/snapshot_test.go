package rng

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesMathRand proves the snapshotable generator is
// bit-identical to the math/rand source every golden figure was produced
// with: for a spread of seeds, an interleaved draw program over every
// distribution the simulator uses must match *rand.Rand exactly.
func TestStreamMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 7, 42, -1, 1 << 40, -(1 << 35), 1<<31 - 1, 1 << 31} {
		s := New(seed)
		r := rand.New(rand.NewSource(seed))
		buf1 := make([]byte, 13)
		buf2 := make([]byte, 13)
		for i := 0; i < 500; i++ {
			if g, w := s.Float64(), r.Float64(); g != w {
				t.Fatalf("seed %d step %d: Float64 = %v, want %v", seed, i, g, w)
			}
			if g, w := s.Norm(), r.NormFloat64(); g != w {
				t.Fatalf("seed %d step %d: Norm = %v, want %v", seed, i, g, w)
			}
			if g, w := s.Intn(97), r.Intn(97); g != w {
				t.Fatalf("seed %d step %d: Intn = %d, want %d", seed, i, g, w)
			}
			// Bytes must reproduce rand.Rand.Read including the carry of
			// partial Int63 words across calls (13 is coprime with 7).
			s.Bytes(buf1)
			r.Read(buf2)
			if string(buf1) != string(buf2) {
				t.Fatalf("seed %d step %d: Bytes = %x, want %x", seed, i, buf1, buf2)
			}
			if i%50 == 0 {
				gp, wp := s.Perm(11), r.Perm(11)
				for j := range gp {
					if gp[j] != wp[j] {
						t.Fatalf("seed %d step %d: Perm[%d] = %d, want %d", seed, i, j, gp[j], wp[j])
					}
				}
			}
		}
	}
}

// TestSnapshotRoundTrip checks the core restore property: snapshot a
// source mid-stream (including mid-Bytes-carry and with the split base
// materialized), restore into a fresh source, and both must produce the
// identical continuation of every draw sequence.
func TestSnapshotRoundTrip(t *testing.T) {
	s := New(12345)
	// Burn an arbitrary prefix that leaves a partial Bytes carry and a
	// materialized split base behind.
	for i := 0; i < 100; i++ {
		s.Norm()
		s.Float64()
	}
	s.Bytes(make([]byte, 5))
	s.Split(3)

	st := s.State()
	restored := New(999) // deliberately different seed; Restore must overwrite fully
	if err := restored.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	for i := 0; i < 300; i++ {
		if g, w := restored.Float64(), s.Float64(); g != w {
			t.Fatalf("step %d: Float64 diverged: %v vs %v", i, g, w)
		}
		if g, w := restored.Norm(), s.Norm(); g != w {
			t.Fatalf("step %d: Norm diverged: %v vs %v", i, g, w)
		}
		b1, b2 := restored.Bytes(make([]byte, 3)), s.Bytes(make([]byte, 3))
		if string(b1) != string(b2) {
			t.Fatalf("step %d: Bytes diverged: %x vs %x", i, b1, b2)
		}
		// Split children must also match: the split base is part of the state.
		if g, w := restored.Split(uint64(i)).Float64(), s.Split(uint64(i)).Float64(); g != w {
			t.Fatalf("step %d: Split child diverged: %v vs %v", i, g, w)
		}
	}
}

// TestSnapshotIsDeepCopy ensures mutating the source after State() does
// not corrupt the captured snapshot.
func TestSnapshotIsDeepCopy(t *testing.T) {
	s := New(7)
	st := s.State()
	want := append([]int64(nil), st.Vec...)
	for i := 0; i < 2000; i++ {
		s.Float64()
	}
	for i, v := range st.Vec {
		if v != want[i] {
			t.Fatalf("snapshot register word %d mutated after further draws", i)
		}
	}
}

// TestRestoreRejectsMalformedState covers the validation paths: a
// truncated register, out-of-range cursors, and an impossible byte carry
// must all fail without modifying the target source.
func TestRestoreRejectsMalformedState(t *testing.T) {
	good := New(1).State()
	cases := []struct {
		name   string
		mutate func(*State)
	}{
		{"short register", func(st *State) { st.Vec = st.Vec[:100] }},
		{"nil register", func(st *State) { st.Vec = nil }},
		{"tap out of range", func(st *State) { st.Tap = lfsrLen }},
		{"negative feed", func(st *State) { st.Feed = -1 }},
		{"bad read carry", func(st *State) { st.ReadPos = 8 }},
	}
	for _, tc := range cases {
		st := good
		st.Vec = append([]int64(nil), good.Vec...)
		tc.mutate(&st)
		s := New(1)
		before := s.State()
		if err := s.Restore(st); err == nil {
			t.Fatalf("%s: Restore accepted malformed state", tc.name)
		}
		after := s.State()
		if after.Tap != before.Tap || after.Feed != before.Feed {
			t.Fatalf("%s: failed Restore mutated the source", tc.name)
		}
	}
}
