package fec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var allRates = []Rate{Rate12, Rate23, Rate34}

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, rate := range allRates {
		for _, n := range []int{1, 7, 48, 100, 333} {
			data := randBits(r, n)
			if got, want := len(Encode(data, rate)), EncodedLen(n, rate); got != want {
				t.Fatalf("rate %s n=%d: Encode len %d, EncodedLen %d", rate, n, got, want)
			}
		}
	}
}

func TestRateFraction(t *testing.T) {
	// Coded length should approach n/rate for large n.
	n := 3000
	for _, rate := range allRates {
		got := float64(EncodedLen(n, rate))
		want := float64(n) / rate.Fraction()
		if got < want || got > want+24 {
			t.Fatalf("rate %s: coded len %v for %d bits (expected ≈%v)", rate, got, n, want)
		}
	}
}

func TestNoiselessRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, rate := range allRates {
		for _, n := range []int{1, 2, 10, 96, 500} {
			data := randBits(r, n)
			coded := Encode(data, rate)
			dec, err := DecodeHard(coded, n, rate)
			if err != nil {
				t.Fatal(err)
			}
			for i := range data {
				if dec[i] != data[i] {
					t.Fatalf("rate %s n=%d: bit %d wrong", rate, n, i)
				}
			}
		}
	}
}

func TestKnownEncoderOutput(t *testing.T) {
	// First input bit 1 from zero state: register = 1000000 (input in MSB);
	// A = parity(reg & 133o), B = parity(reg & 171o). 133o=1011011b,
	// 171o=1111001b; both have the MSB set, so output is 11.
	coded := Encode([]byte{1}, Rate12)
	if coded[0] != 1 || coded[1] != 1 {
		t.Fatalf("first coded pair = %d%d, want 11", coded[0], coded[1])
	}
	// All-zero input must give all-zero output.
	for i, b := range Encode(make([]byte, 20), Rate12) {
		if b != 0 {
			t.Fatalf("zero input produced 1 at %d", i)
		}
	}
}

func TestHardDecodingCorrectsBitErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 400
	data := randBits(r, n)
	coded := Encode(data, Rate12)
	// Flip ~2% of coded bits, spread out (free distance 10 corrects dense
	// errors poorly, sparse well).
	for i := 0; i < len(coded); i += 53 {
		coded[i] ^= 1
	}
	dec, err := DecodeHard(coded, n, Rate12)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range data {
		if dec[i] != data[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Fatalf("%d residual errors after sparse flips", errs)
	}
}

func TestSoftBeatsHardAtModerateNoise(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 300
	trials := 40
	hardErrs, softErrs := 0, 0
	sigma := 0.95 // BPSK noise sd at ~0.4 dB Eb/N0: plenty of raw errors
	for trial := 0; trial < trials; trial++ {
		data := randBits(r, n)
		coded := Encode(data, Rate12)
		rx := make([]float64, len(coded)) // received BPSK: 0→+1, 1→-1
		for i, b := range coded {
			v := 1.0
			if b == 1 {
				v = -1.0
			}
			rx[i] = v + sigma*r.NormFloat64()
		}
		hard := make([]byte, len(coded))
		soft := make([]float64, len(coded))
		for i, v := range rx {
			if v < 0 {
				hard[i] = 1
			}
			soft[i] = 2 * v / (sigma * sigma)
		}
		hd, err := DecodeHard(hard, n, Rate12)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := DecodeSoft(soft, n, Rate12)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if hd[i] != data[i] {
				hardErrs++
			}
			if sd[i] != data[i] {
				softErrs++
			}
		}
	}
	if softErrs >= hardErrs {
		t.Fatalf("soft decoding (%d errors) not better than hard (%d)", softErrs, hardErrs)
	}
}

func TestPuncturedRatesDecodeUnderLightNoise(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 300
	for _, rate := range []Rate{Rate23, Rate34} {
		data := randBits(r, n)
		coded := Encode(data, rate)
		llr := make([]float64, len(coded))
		for i, b := range coded {
			v := 1.0
			if b == 1 {
				v = -1.0
			}
			llr[i] = 4 * (v + 0.45*r.NormFloat64())
		}
		dec, err := DecodeSoft(llr, n, rate)
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range data {
			if dec[i] != data[i] {
				errs++
			}
		}
		if errs > 0 {
			t.Fatalf("rate %s: %d errors under light noise", rate, errs)
		}
	}
}

func TestDecodeLengthValidation(t *testing.T) {
	if _, err := DecodeHard(make([]byte, 10), 100, Rate12); err == nil {
		t.Fatal("no error for wrong coded length")
	}
}

// Property: encode/decode is the identity without noise for random inputs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, rateIdx uint8) bool {
		if len(raw) == 0 {
			return true
		}
		rate := allRates[int(rateIdx)%len(allRates)]
		data := make([]byte, len(raw))
		for i := range raw {
			data[i] = raw[i] & 1
		}
		dec, err := DecodeHard(Encode(data, rate), len(data), rate)
		if err != nil {
			return false
		}
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRate12(b *testing.B) {
	data := randBits(rand.New(rand.NewSource(1)), 12000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(data, Rate12)
	}
}

func BenchmarkViterbi1500ByteFrame(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 1500 * 8
	data := randBits(r, n)
	coded := Encode(data, Rate34)
	llr := make([]float64, len(coded))
	for i, bit := range coded {
		if bit == 0 {
			llr[i] = 1
		} else {
			llr[i] = -1
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSoft(llr, n, Rate34); err != nil {
			b.Fatal(err)
		}
	}
}
