// Package fec implements 802.11's forward error correction: the rate-1/2
// constraint-length-7 convolutional code (generators 133/171 octal), the
// standard puncturing patterns for rates 2/3 and 3/4, and a Viterbi decoder
// that accepts either hard bits or soft log-likelihood ratios.
package fec

import (
	"fmt"
	"math"
)

// Rate is a coding rate.
type Rate int

const (
	Rate12 Rate = iota // 1/2
	Rate23             // 2/3
	Rate34             // 3/4
)

// String returns "1/2" etc.
func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Fraction returns the numeric coding rate.
func (r Rate) Fraction() float64 {
	switch r {
	case Rate12:
		return 0.5
	case Rate23:
		return 2.0 / 3.0
	case Rate34:
		return 0.75
	}
	panic("fec: unknown rate")
}

// puncture patterns over the mother-code output stream (pairs A,B per input
// bit): true = transmit, false = puncture. Patterns follow 802.11-1999 §17.
func (r Rate) pattern() []bool {
	switch r {
	case Rate12:
		return []bool{true, true}
	case Rate23:
		// A1 B1 A2 (B2 punctured), period 2 input bits.
		return []bool{true, true, true, false}
	case Rate34:
		// A1 B1 A2 (B2) (A3) B3, period 3 input bits.
		return []bool{true, true, true, false, false, true}
	}
	panic("fec: unknown rate")
}

const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	genA          = 0o133
	genB          = 0o171
)

// outputs[state][input] packs the two mother-code output bits (A<<1 | B).
var outputs [numStates][2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (in << (constraintLen - 1)) | s
			a := parity(reg & genA)
			b := parity(reg & genB)
			outputs[s][in] = a<<1 | b
		}
	}
}

func parity(x int) byte {
	var p byte
	for x != 0 {
		p ^= byte(x & 1)
		x >>= 1
	}
	return p
}

// Encode convolutionally encodes data bits (0/1 values) at the given rate.
// The encoder appends constraintLen-1 zero tail bits to terminate the
// trellis, matching what Decode assumes. Output length is
// ceil(2*(len(data)+6) * kept/patternLen) after puncturing.
func Encode(data []byte, rate Rate) []byte {
	pat := rate.pattern()
	mother := make([]byte, 0, 2*(len(data)+constraintLen-1))
	state := 0
	emit := func(bit byte) {
		out := outputs[state][bit]
		mother = append(mother, out>>1, out&1)
		state = (state >> 1) | (int(bit) << (constraintLen - 2))
	}
	for _, b := range data {
		emit(b & 1)
	}
	for i := 0; i < constraintLen-1; i++ {
		emit(0)
	}
	// Puncture.
	out := make([]byte, 0, len(mother))
	for i, b := range mother {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// EncodedLen returns the number of coded bits Encode produces for n data
// bits at the given rate.
func EncodedLen(n int, rate Rate) int {
	motherLen := 2 * (n + constraintLen - 1)
	pat := rate.pattern()
	kept := 0
	for i := 0; i < motherLen; i++ {
		if pat[i%len(pat)] {
			kept++
		}
	}
	return kept
}

// DecodeHard runs Viterbi over hard-decision coded bits and returns the
// decoded data (without the tail). codedLen must equal EncodedLen(n, rate)
// for the n the caller expects.
func DecodeHard(coded []byte, n int, rate Rate) ([]byte, error) {
	llr := make([]float64, len(coded))
	for i, b := range coded {
		if b&1 == 0 {
			llr[i] = 1 // bit 0 likely
		} else {
			llr[i] = -1
		}
	}
	return DecodeSoft(llr, n, rate)
}

// DecodeSoft runs Viterbi over per-bit LLRs (positive = bit 0) and returns
// the n decoded data bits. Punctured positions are reinserted as zero-LLR
// erasures before trellis traversal.
func DecodeSoft(llr []float64, n int, rate Rate) ([]byte, error) {
	if want := EncodedLen(n, rate); len(llr) != want {
		return nil, fmt.Errorf("fec: got %d coded LLRs, want %d for %d bits at rate %s", len(llr), want, n, rate)
	}
	total := n + constraintLen - 1 // trellis steps including tail
	// Depuncture into per-step (A, B) LLRs.
	pat := rate.pattern()
	full := make([]float64, 2*total)
	src := 0
	for i := range full {
		if pat[i%len(pat)] {
			full[i] = llr[src]
			src++
		}
	}
	// Viterbi with full traceback (packet-scale trellises are small).
	const inf = math.MaxFloat64 / 4
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	backptr := make([][numStates]uint8, total) // input bit chosen per state per step... need predecessor too
	// We store, for each step and each *next state*, the input bit and
	// implicit predecessor: nextState = (prev >> 1) | (bit << 5) means the
	// predecessors of state t are (t<<1)&63 | 0 and |1 with input bit t>>5.
	for step := 0; step < total; step++ {
		la, lb := full[2*step], full[2*step+1]
		for s := range next {
			next[s] = inf
		}
		for prev := 0; prev < numStates; prev++ {
			pm := metric[prev]
			if pm >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				out := outputs[prev][in]
				// Branch metric: negative log-likelihood; LLR>0 favors 0.
				var bm float64
				if out>>1 == 1 {
					bm += la
				} else {
					bm -= la
				}
				if out&1 == 1 {
					bm += lb
				} else {
					bm -= lb
				}
				ns := (prev >> 1) | (in << (constraintLen - 2))
				if m := pm + bm; m < next[ns] {
					next[ns] = m
					backptr[step][ns] = uint8(prev)
				}
			}
		}
		metric, next = next, metric
	}
	// Trellis is terminated: trace back from state 0.
	state := 0
	bits := make([]byte, total)
	for step := total - 1; step >= 0; step-- {
		prev := int(backptr[step][state])
		// Input bit that moved prev→state is the MSB of state.
		bits[step] = byte(state >> (constraintLen - 2))
		state = prev
	}
	return bits[:n], nil
}
