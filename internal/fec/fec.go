// Package fec implements 802.11's forward error correction: the rate-1/2
// constraint-length-7 convolutional code (generators 133/171 octal), the
// standard puncturing patterns for rates 2/3 and 3/4, and a Viterbi decoder
// that accepts either hard bits or soft log-likelihood ratios.
package fec

import (
	"fmt"
	"math"
)

// Rate is a coding rate.
type Rate int

const (
	Rate12 Rate = iota // 1/2
	Rate23             // 2/3
	Rate34             // 3/4
)

// String returns "1/2" etc.
func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Fraction returns the numeric coding rate.
func (r Rate) Fraction() float64 {
	switch r {
	case Rate12:
		return 0.5
	case Rate23:
		return 2.0 / 3.0
	case Rate34:
		return 0.75
	}
	panic("fec: unknown rate")
}

// puncture patterns over the mother-code output stream (pairs A,B per input
// bit): true = transmit, false = puncture. Patterns follow 802.11-1999 §17.
func (r Rate) pattern() []bool {
	switch r {
	case Rate12:
		return []bool{true, true}
	case Rate23:
		// A1 B1 A2 (B2 punctured), period 2 input bits.
		return []bool{true, true, true, false}
	case Rate34:
		// A1 B1 A2 (B2) (A3) B3, period 3 input bits.
		return []bool{true, true, true, false, false, true}
	}
	panic("fec: unknown rate")
}

const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	genA          = 0o133
	genB          = 0o171
)

// outputs[state][input] packs the two mother-code output bits (A<<1 | B).
var outputs [numStates][2]byte

// Butterfly branch tables: the two predecessors of next state ns are
// p0 = (ns<<1)&63 and p1 = p0|1, both consumed with input bit ns>>5.
// Because both generators tap the oldest register bit and the input bit,
// outputs[p][1] = outputs[p][0]^3 and outputs[p0|1][in] = outputs[p0][in]^3,
// so one table of outputs[2j][0] per butterfly pair j covers all four
// branches by sign flips of the branch metric.
var branchIdx [numStates / 2]byte // outputs[2j][0] for butterfly pair j

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (in << (constraintLen - 1)) | s
			a := parity(reg & genA)
			b := parity(reg & genB)
			outputs[s][in] = a<<1 | b
		}
	}
	for j := 0; j < numStates/2; j++ {
		branchIdx[j] = outputs[2*j][0]
	}
}

func parity(x int) byte {
	var p byte
	for x != 0 {
		p ^= byte(x & 1)
		x >>= 1
	}
	return p
}

// Encode convolutionally encodes data bits (0/1 values) at the given rate.
// The encoder appends constraintLen-1 zero tail bits to terminate the
// trellis, matching what Decode assumes. Output length is
// ceil(2*(len(data)+6) * kept/patternLen) after puncturing.
func Encode(data []byte, rate Rate) []byte {
	pat := rate.pattern()
	mother := make([]byte, 0, 2*(len(data)+constraintLen-1))
	state := 0
	emit := func(bit byte) {
		out := outputs[state][bit]
		mother = append(mother, out>>1, out&1)
		state = (state >> 1) | (int(bit) << (constraintLen - 2))
	}
	for _, b := range data {
		emit(b & 1)
	}
	for i := 0; i < constraintLen-1; i++ {
		emit(0)
	}
	// Puncture.
	out := make([]byte, 0, len(mother))
	for i, b := range mother {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// EncodedLen returns the number of coded bits Encode produces for n data
// bits at the given rate.
func EncodedLen(n int, rate Rate) int {
	motherLen := 2 * (n + constraintLen - 1)
	pat := rate.pattern()
	kept := 0
	for i := 0; i < motherLen; i++ {
		if pat[i%len(pat)] {
			kept++
		}
	}
	return kept
}

// DecodeHard runs Viterbi over hard-decision coded bits and returns the
// decoded data (without the tail). codedLen must equal EncodedLen(n, rate)
// for the n the caller expects.
func DecodeHard(coded []byte, n int, rate Rate) ([]byte, error) {
	llr := make([]float64, len(coded))
	for i, b := range coded {
		if b&1 == 0 {
			llr[i] = 1 // bit 0 likely
		} else {
			llr[i] = -1
		}
	}
	return DecodeSoft(llr, n, rate)
}

// DecodeSoft runs Viterbi over per-bit LLRs (positive = bit 0) and returns
// the n decoded data bits. Punctured positions are reinserted as zero-LLR
// erasures before trellis traversal. The returned slice is freshly
// allocated; hot paths should hold a Decoder and call its method instead.
func DecodeSoft(llr []float64, n int, rate Rate) ([]byte, error) {
	var d Decoder
	bits, err := d.DecodeSoft(llr, n, rate)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), bits...), nil
}

// Decoder is a reusable Viterbi decoder. The zero value is ready to use;
// scratch buffers (depunctured LLRs, the traceback matrix, the decoded
// bits) grow to the largest frame seen and are reused across calls, so a
// long-lived Decoder takes the per-packet trellis allocations off the
// signal path. A Decoder is not safe for concurrent use, and the slice
// returned by DecodeSoft is overwritten by the next call.
type Decoder struct {
	full    []float64 // depunctured (A, B) LLR pairs, 2*total
	backptr []uint8   // chosen predecessor per step per state, total*numStates
	bits    []byte    // decoded bits incl. tail, total
}

// DecodeSoft is the allocating-free variant of the package-level
// DecodeSoft: the returned slice aliases the decoder's scratch and is
// valid until the next call.
//
// The trellis update runs as a butterfly over next-state pairs: states j
// and j+32 share the predecessors 2j and 2j+1, and because generators
// 133/171 both tap the newest and oldest register bits, all four branch
// metrics of a butterfly are ±bm[branchIdx[j]]. That turns the inner loop
// into 32 iterations of pure adds and compares — no reachability guard,
// no per-branch sign decisions — which is what makes soft decoding of
// full frames affordable on the hot path.
func (d *Decoder) DecodeSoft(llr []float64, n int, rate Rate) ([]byte, error) {
	if want := EncodedLen(n, rate); len(llr) != want {
		return nil, fmt.Errorf("fec: got %d coded LLRs, want %d for %d bits at rate %s", len(llr), want, n, rate)
	}
	total := n + constraintLen - 1 // trellis steps including tail
	// Depuncture into per-step (A, B) LLRs.
	pat := rate.pattern()
	full := d.grow(total)
	src := 0
	for i := range full {
		if pat[i%len(pat)] {
			full[i] = llr[src]
			src++
		} else {
			full[i] = 0
		}
	}
	// Viterbi with full traceback (packet-scale trellises are small).
	// Unreachable states carry inf/4; adding a branch metric to one leaves
	// it far above any real path metric, so no explicit guard is needed.
	const inf = math.MaxFloat64 / 4
	var metricBuf [2][numStates]float64
	mp, np := &metricBuf[0], &metricBuf[1]
	for s := 1; s < numStates; s++ {
		mp[s] = inf
	}
	backptr := d.backptr
	for step := 0; step < total; step++ {
		la, lb := full[2*step], full[2*step+1]
		// bm[out] for out = A<<1|B; LLR>0 favors bit 0, cost is minimized.
		var bm [4]float64
		bm[0] = -la - lb
		bm[1] = -la + lb
		bm[2] = la - lb
		bm[3] = la + lb
		bp := backptr[step*numStates : step*numStates+numStates : step*numStates+numStates]
		for j := 0; j < numStates/2; j++ {
			a := mp[2*j]
			b := mp[2*j+1]
			v := bm[branchIdx[j]]
			// in = 0 lands in state j: branch metrics +v from 2j, -v from
			// 2j+1. The select is branchless — these comparisons are
			// data-dependent coin flips, and a branchy select mispredicts
			// its way to ~3× the latency. sign(m1-m0) is an exact stand-in
			// for m1 < m0 (IEEE subtraction is zero iff the operands are
			// equal, and ties must pick the even predecessor 2j).
			m0, m1 := a+v, b-v
			sel := uint64(int64(math.Float64bits(m1-m0)) >> 63)
			mb := (math.Float64bits(m0) &^ sel) | (math.Float64bits(m1) & sel)
			np[j] = math.Float64frombits(mb)
			bp[j] = uint8(2*j) + uint8(sel&1)
			// in = 1 lands in state j+32 with both signs flipped.
			m0, m1 = a-v, b+v
			sel = uint64(int64(math.Float64bits(m1-m0)) >> 63)
			mb = (math.Float64bits(m0) &^ sel) | (math.Float64bits(m1) & sel)
			np[j+numStates/2] = math.Float64frombits(mb)
			bp[j+numStates/2] = uint8(2*j) + uint8(sel&1)
		}
		mp, np = np, mp
	}
	// Trellis is terminated: trace back from state 0.
	state := 0
	bits := d.bits[:total]
	for step := total - 1; step >= 0; step-- {
		prev := int(backptr[step*numStates+state])
		// Input bit that moved prev→state is the MSB of state.
		bits[step] = byte(state >> (constraintLen - 2))
		state = prev
	}
	return bits[:n], nil
}

// grow sizes the scratch buffers for a trellis of total steps and returns
// the depuncture buffer.
func (d *Decoder) grow(total int) []float64 {
	if cap(d.full) < 2*total {
		d.full = make([]float64, 2*total)
		d.backptr = make([]uint8, total*numStates)
		d.bits = make([]byte, total)
	}
	d.full = d.full[:2*total]
	if len(d.backptr) < total*numStates {
		d.backptr = make([]uint8, total*numStates)
	}
	if len(d.bits) < total {
		d.bits = make([]byte, total)
	}
	return d.full
}
