package scramble

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelfInverse(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte(r.Intn(2))
	}
	orig := append([]byte(nil), data...)
	New(0x5d).Apply(data)
	New(0x5d).Apply(data)
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("double scramble not identity at %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	s := New(0)
	seq := s.Sequence(127)
	allZero := true
	for _, b := range seq {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced stuck-at-zero sequence")
	}
}

func TestPeriod127(t *testing.T) {
	s := New(0x7f)
	seq := s.Sequence(254)
	for i := 0; i < 127; i++ {
		if seq[i] != seq[i+127] {
			t.Fatalf("sequence not periodic with 127 at %d", i)
		}
	}
	// And no shorter period that divides 127 exists (127 prime: only 1);
	// check it is not constant.
	if seq[0] == seq[1] && seq[1] == seq[2] && seq[2] == seq[3] && seq[3] == seq[4] && seq[4] == seq[5] && seq[5] == seq[6] && seq[6] == seq[7] {
		t.Fatal("suspiciously constant start")
	}
}

func TestKnownSequenceAllOnesSeed(t *testing.T) {
	// 802.11-1999 Annex G: with all-ones seed the first bits of the
	// scrambling sequence are 00001110 11110010 11001001.
	want := []byte{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 0, 1}
	got := New(0x7f).Sequence(len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestBalancedSequence(t *testing.T) {
	// Maximal-length sequence has 64 ones and 63 zeros per period.
	seq := New(0x2a).Sequence(127)
	ones := 0
	for _, b := range seq {
		ones += int(b)
	}
	if ones != 64 {
		t.Fatalf("ones per period = %d, want 64", ones)
	}
}

func TestSequenceDoesNotAdvanceState(t *testing.T) {
	s := New(0x11)
	a := s.Sequence(10)
	b := s.Sequence(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sequence consumed state")
		}
	}
}

func TestQuickSelfInverseAnySeed(t *testing.T) {
	f := func(seed byte, raw []byte) bool {
		data := make([]byte, len(raw))
		for i := range raw {
			data[i] = raw[i] & 1
		}
		orig := append([]byte(nil), data...)
		New(seed).Apply(data)
		New(seed).Apply(data)
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
