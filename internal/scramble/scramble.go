// Package scramble implements the 802.11 length-127 frame-synchronous
// scrambler (polynomial x^7 + x^4 + 1). Scrambling whitens the data so the
// OFDM waveform has no pathological peak-to-average patterns; it is its own
// inverse for a given initial state.
package scramble

// Scrambler is the 7-bit LFSR state machine.
type Scrambler struct {
	state byte // 7-bit state, never zero
}

// New returns a scrambler with the given 7-bit initial state; state 0 is
// remapped to the conventional all-ones seed because a zero LFSR never
// leaves zero.
func New(state byte) *Scrambler {
	state &= 0x7f
	if state == 0 {
		state = 0x7f
	}
	return &Scrambler{state: state}
}

// NextBit advances the LFSR and returns the next scrambling bit.
func (s *Scrambler) NextBit() byte {
	// Feedback: x^7 + x^4 + 1 → bit = s[6] ^ s[3] (0-indexed from LSB).
	b := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | b) & 0x7f
	return b
}

// Apply XORs the scrambler sequence onto bits in place and returns bits.
// Calling Apply twice with scramblers in the same initial state restores
// the original data.
func (s *Scrambler) Apply(bits []byte) []byte {
	for i := range bits {
		bits[i] = (bits[i] & 1) ^ s.NextBit()
	}
	return bits
}

// Sequence returns the first n scrambler bits without consuming shared
// state (it operates on a copy).
func (s *Scrambler) Sequence(n int) []byte {
	cp := *s
	out := make([]byte, n)
	for i := range out {
		out[i] = cp.NextBit()
	}
	return out
}
