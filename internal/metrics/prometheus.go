package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per instrument, histograms
// with *cumulative* `_bucket{le="…"}` series plus `_sum` and `_count`.
// Like WriteJSON, output walks instruments in sorted-name order and is
// byte-identical for identical recorded state.
//
// Instrument names are used as metric names verbatim; the repo's
// snake_case names are valid Prometheus identifiers by construction.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, r.counters[name].v)
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		fmt.Fprintf(bw, "%s %s\n", name, promFloat(r.gauges[name].v))
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum int64
		for i, c := range h.counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = promFloat(h.bounds[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(h.sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.n)
	}
	return bw.Flush()
}

// promFloat renders a float the way the exposition format expects.
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }
