package metrics

import (
	"fmt"
	"math"
	"sort"
)

// HistState is one histogram's serializable state: the bucket table it was
// created with plus every accumulated count.
type HistState struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	N      int64     `json:"n"`
	Sum    float64   `json:"sum"`
}

// GaugeState carries a gauge's level plus whether it was ever set (an
// unset gauge stays out of the Prometheus exposition).
type GaugeState struct {
	Value float64 `json:"value"`
	Set   bool    `json:"set,omitempty"`
}

// RegistryState is the full serializable registry: every instrument by
// name. Maps are fine on the wire — encoding/json sorts map keys, so the
// encoding is deterministic.
type RegistryState struct {
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]GaugeState `json:"gauges,omitempty"`
	Histograms map[string]HistState  `json:"histograms,omitempty"`
}

// sortedKeys returns a map's keys in sorted order — the determinism
// lint's required iteration pattern, even where the surrounding writes
// are order-insensitive.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for name := range m {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() RegistryState {
	st := RegistryState{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeState, len(r.gauges)),
		Histograms: make(map[string]HistState, len(r.hists)),
	}
	for _, name := range sortedKeys(r.counters) {
		st.Counters[name] = r.counters[name].v
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		st.Gauges[name] = GaugeState{Value: g.v, Set: g.set}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		st.Histograms[name] = HistState{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			N:      h.n,
			Sum:    h.sum,
		}
	}
	return st
}

// RestoreSnapshot overwrites the registry from st. Instruments already
// resolved by name keep their pointers — values are written in place, so
// every component holding a *Counter keeps recording into the restored
// instrument. Instruments in st but not yet resolved are created;
// instruments resolved but absent from st are zeroed (they did not exist
// when the snapshot was taken).
func (r *Registry) RestoreSnapshot(st RegistryState) error {
	for _, name := range sortedKeys(r.counters) {
		r.counters[name].v = st.Counters[name]
	}
	for _, name := range sortedKeys(st.Counters) {
		r.Counter(name).v = st.Counters[name]
	}
	for _, name := range sortedKeys(r.gauges) {
		gs := st.Gauges[name]
		g := r.gauges[name]
		g.v, g.set = gs.Value, gs.Set
	}
	for _, name := range sortedKeys(st.Gauges) {
		gs := st.Gauges[name]
		g := r.Gauge(name)
		g.v, g.set = gs.Value, gs.Set
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		hs, ok := st.Histograms[name]
		if !ok {
			for i := range h.counts {
				h.counts[i] = 0
			}
			h.n, h.sum = 0, 0
			continue
		}
		if err := h.restore(name, hs); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(st.Histograms) {
		if _, ok := r.hists[name]; ok {
			continue
		}
		hs := st.Histograms[name]
		h := r.Histogram(name, hs.Bounds)
		if err := h.restore(name, hs); err != nil {
			return err
		}
	}
	return nil
}

// restore overwrites one histogram, validating the bucket table matches.
// Bounds are configuration constants, so the match is exact bit identity,
// not a tolerance.
func (h *Histogram) restore(name string, hs HistState) error {
	if len(hs.Counts) != len(h.counts) || len(hs.Bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: restore histogram %q: %d bounds / %d counts, have %d / %d",
			name, len(hs.Bounds), len(hs.Counts), len(h.bounds), len(h.counts))
	}
	for i, b := range h.bounds {
		if math.Float64bits(hs.Bounds[i]) != math.Float64bits(b) {
			return fmt.Errorf("metrics: restore histogram %q: bound %d is %g, have %g", name, i, hs.Bounds[i], b)
		}
	}
	copy(h.counts, hs.Counts)
	h.n, h.sum = hs.N, hs.Sum
	return nil
}

// SamplerState is the sampler's carry between samples: the previous
// counter totals its deltas are computed against. The accumulated series
// is not part of the state — a resumed run streams its samples through
// OnSample and regenerates only the tail.
type SamplerState struct {
	Prev map[string]int64 `json:"prev,omitempty"`
}

// Snapshot captures the delta baseline.
func (s *Sampler) Snapshot() SamplerState {
	prev := make(map[string]int64, len(s.prev))
	for _, name := range sortedKeys(s.prev) {
		prev[name] = s.prev[name]
	}
	return SamplerState{Prev: prev}
}

// RestoreSnapshot overwrites the delta baseline, so the first sample after
// a resume reports the same deltas the uninterrupted run would have.
func (s *Sampler) RestoreSnapshot(st SamplerState) {
	s.prev = make(map[string]int64, len(st.Prev))
	for _, name := range sortedKeys(st.Prev) {
		s.prev[name] = st.Prev[name]
	}
}
