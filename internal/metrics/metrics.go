// Package metrics is the simulator's runtime telemetry layer: counters,
// gauges and fixed-bucket histograms instrumented at the mac/phy/core
// boundaries (retransmissions, sync-header overhead, decode failures,
// queue depth) and exported as deterministic JSON.
//
// The design constraints mirror the signal path's:
//
//   - Allocation-free on the hot path. Recording is a field increment or a
//     binary search over a fixed bucket table; instruments are resolved by
//     name once at wiring time and held as pointers, never looked up per
//     event. A joint transmission's allocation budget
//     (TestJointTransmitAllocBudget) covers the instrumented path.
//   - Deterministic output. Export walks instruments in sorted-name order,
//     so two runs that perform the same work emit byte-identical JSON —
//     the same replayability contract the experiment engine obeys.
//   - Single-threaded, like the Network that owns each registry. Parallel
//     experiment cells each own their network and therefore their
//     registry; nothing here is shared across goroutines.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time level (queue depth, current MCS index).
type Gauge struct {
	v   float64
	set bool
}

// Set records the current level. NaN is ignored: every export format
// (JSON, JSONL series, Prometheus exposition) requires finite numbers,
// so a NaN must never enter an instrument.
func (g *Gauge) Set(v float64) {
	if math.IsNaN(v) {
		return
	}
	g.v, g.set = v, true
}

// Value returns the last recorded level (0 before any Set).
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets: counts[i] holds
// observations with v <= bounds[i]; the final implicit bucket catches
// everything above the last bound. Bounds are fixed at creation, so
// Observe never allocates.
type Histogram struct {
	bounds []float64
	counts []int64
	n      int64
	sum    float64
}

// Observe records one value. NaN is ignored (see Gauge.Set): a single
// NaN observation would poison Sum and Mean for every later export.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation (0 before any Observe).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound on the q-quantile (0–1): the smallest
// bucket bound holding at least a q fraction of observations. Values in
// the overflow bucket report the last finite bound (the histogram cannot
// resolve beyond its table). Returns 0 before any Observe.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds a simulation run's instruments, keyed by name.
// Get-or-create accessors make wiring order-independent; recording through
// the returned pointers is allocation-free.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use; later calls reuse the existing
// instrument and ignore bounds (first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// bucketJSON is one exported histogram bucket; LE is the inclusive upper
// bound ("+Inf" for the overflow bucket, which JSON numbers cannot carry).
type bucketJSON struct {
	LE string `json:"le"`
	N  int64  `json:"n"`
}

// histJSON is one exported histogram.
type histJSON struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []bucketJSON `json:"buckets"`
}

// namedValue / namedHist keep export arrays explicitly ordered, so the
// byte stream is a pure function of the recorded values.
type namedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type namedCount struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type namedHist struct {
	Name string   `json:"name"`
	Hist histJSON `json:"histogram"`
}

type registryJSON struct {
	Counters   []namedCount `json:"counters"`
	Gauges     []namedValue `json:"gauges"`
	Histograms []namedHist  `json:"histograms"`
}

// snapshot assembles the sorted export view.
func (r *Registry) snapshot() registryJSON {
	out := registryJSON{
		Counters:   []namedCount{},
		Gauges:     []namedValue{},
		Histograms: []namedHist{},
	}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Counters = append(out.Counters, namedCount{Name: name, Value: r.counters[name].v})
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Gauges = append(out.Gauges, namedValue{Name: name, Value: r.gauges[name].v})
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hj := histJSON{Count: h.n, Sum: h.sum, Buckets: make([]bucketJSON, len(h.counts))}
		for i, c := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = fmt.Sprintf("%g", h.bounds[i])
			}
			hj.Buckets[i] = bucketJSON{LE: le, N: c}
		}
		out.Histograms = append(out.Histograms, namedHist{Name: name, Hist: hj})
	}
	return out
}

// WriteJSON writes the registry as indented JSON with instruments in
// sorted-name order — byte-identical for identical recorded state.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshot())
}

// MarshalJSON implements json.Marshaler with the same deterministic view.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.snapshot())
}
