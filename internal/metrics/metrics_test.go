package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mac_retransmissions_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if r.Counter("mac_retransmissions_total") != c {
		t.Fatal("second lookup returned a different instrument")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mac_queue_depth")
	if g.Value() != 0 {
		t.Fatal("fresh gauge not zero")
	}
	g.Set(17)
	g.Set(3)
	if g.Value() != 3 {
		t.Fatalf("Value = %v, want 3", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 115 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	// v <= bound bucketing: 0.5 and 1 land in le=1; 1.5 in le=2; 3 in
	// le=4; 9 and 100 overflow.
	want := []int64{2, 1, 1, 0, 2}
	for i, n := range want {
		if h.counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.counts[i], n, h.counts)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4, 8, 16})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1.5) // le=2
	}
	for i := 0; i < 10; i++ {
		h.Observe(12) // le=16
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(0.95); got != 16 {
		t.Fatalf("p95 = %v, want 16", got)
	}
	h.Observe(1e9) // overflow reports the last finite bound
	if got := h.Quantile(1); got != 16 {
		t.Fatalf("p100 with overflow = %v, want 16", got)
	}
}

func TestHistogramBoundsFixedAtCreation(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{4, 1, 2}) // unsorted input is sorted
	h2 := r.Histogram("h", []float64{1000})    // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name returned different histograms")
	}
	h1.Observe(1.5)
	if h1.counts[1] != 1 {
		t.Fatalf("bounds not sorted at creation: %v", h1.counts)
	}
}

func TestJSONDeterministicAcrossInsertionOrder(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
		}
		r.Gauge("g_b").Set(2)
		r.Gauge("g_a").Set(1)
		r.Histogram("h", []float64{1, 10}).Observe(5)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	if a != b {
		t.Fatalf("JSON depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	// Sorted-name order must be visible in the byte stream.
	if ia, iz := strings.Index(a, `"alpha"`), strings.Index(a, `"zeta"`); ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("counters not name-sorted:\n%s", a)
	}
	// And it must round-trip as valid JSON.
	var v any
	if err := json.Unmarshal([]byte(a), &v); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

func TestEmptyRegistryExport(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"counters": []`) {
		t.Fatalf("empty registry export: %s", buf.String())
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 4, 8, 16, 32})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		h.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("hot-path recording allocates %v/op, want 0", allocs)
	}
}
