package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestNaNGuards pins the satellite fix: NaN can never enter an
// instrument, so no export format ever sees one.
func TestNaNGuards(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Set(math.NaN())
	if g.Value() != 3.5 {
		t.Fatalf("NaN overwrote the gauge: %v", g.Value())
	}
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(2)
	h.Observe(math.NaN())
	if h.Count() != 1 || math.IsNaN(h.Sum()) || math.IsNaN(h.Mean()) {
		t.Fatalf("NaN observation poisoned the histogram: count=%d sum=%v", h.Count(), h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("JSON export after NaN inputs: %v", err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into JSON export")
	}
}

// TestEmptyHistogramSnapshotPinned pins the empty-instrument outputs the
// streaming sampler depends on: zero quantiles and mean, finite sums, no
// NaN anywhere in JSON or Prometheus form.
func TestEmptyHistogramSnapshotPinned(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_hist", []float64{1, 5, 25})
	if h.Quantile(0.5) != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram quantiles: p50=%v p99=%v, want 0", h.Quantile(0.5), h.Quantile(0.99))
	}
	if h.Mean() != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", h.Mean())
	}
	sm := NewSampler(r).Sample(0)
	if len(sm.Histograms) != 1 {
		t.Fatalf("sample has %d histograms, want 1", len(sm.Histograms))
	}
	hs := sm.Histograms[0]
	if hs.Count != 0 || hs.Sum != 0 || hs.P50 != 0 || hs.P95 != 0 || hs.P99 != 0 {
		t.Fatalf("empty histogram sample not pinned to zeros: %+v", hs)
	}
	line, err := MarshalSample(sm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(line), "NaN") {
		t.Fatalf("NaN in empty-histogram sample line: %s", line)
	}

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "NaN") {
		t.Fatalf("NaN in Prometheus exposition:\n%s", prom.String())
	}
}

// TestEmptyRegistrySamplePinned pins the zero-instrument sample shape.
func TestEmptyRegistrySamplePinned(t *testing.T) {
	sm := NewSampler(NewRegistry()).Sample(42)
	line, err := MarshalSample(sm)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(line); got != "{\"at\":42}\n" {
		t.Fatalf("empty-registry sample line = %q, want {\"at\":42}", got)
	}
	var prom bytes.Buffer
	if err := NewRegistry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.Len() != 0 {
		t.Fatalf("empty registry Prometheus output = %q, want empty", prom.String())
	}
}

// TestSamplerDeltas checks counters sample as deltas against the prior
// point while totals stay cumulative.
func TestSamplerDeltas(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx_total")
	g := r.Gauge("queue_depth")
	s := NewSampler(r)

	c.Add(5)
	g.Set(3)
	s1 := s.Sample(100)
	c.Add(2)
	g.Set(1)
	s2 := s.Sample(200)
	s3 := s.Sample(300)

	if s1.Counters[0].Delta != 5 || s1.Counters[0].Total != 5 {
		t.Fatalf("first sample: %+v", s1.Counters[0])
	}
	if s2.Counters[0].Delta != 2 || s2.Counters[0].Total != 7 {
		t.Fatalf("second sample: %+v", s2.Counters[0])
	}
	if s3.Counters[0].Delta != 0 || s3.Counters[0].Total != 7 {
		t.Fatalf("idle sample: %+v", s3.Counters[0])
	}
	if s2.Gauges[0].Value != 1 {
		t.Fatalf("gauge not point-in-time: %+v", s2.Gauges[0])
	}
	if len(s.Series()) != 3 {
		t.Fatalf("series holds %d samples, want 3", len(s.Series()))
	}

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL series has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	// Streamed (OnSample) and batch (WriteJSONL) lines must agree.
	want, err := MarshalSample(s1)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0]+"\n" != string(want) {
		t.Fatalf("WriteJSONL line %q != MarshalSample %q", lines[0], want)
	}
}

// TestSamplerOnSampleHook checks the live-streaming hook fires per sample.
func TestSamplerOnSampleHook(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	s := NewSampler(r)
	var got []int64
	s.OnSample = func(sm Sample) { got = append(got, sm.At) }
	s.Sample(1)
	s.Sample(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OnSample saw %v, want [1 2]", got)
	}
}

// TestWritePrometheusFormat pins the exposition-format rendering: TYPE
// lines, cumulative buckets, _sum/_count, sorted instrument order.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Counter("a_total").Add(1)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_total counter",
		"a_total 1",
		"# TYPE b_total counter",
		"b_total 3",
		"# TYPE depth gauge",
		"depth 2.5",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="10"} 2`,
		`lat_ms_bucket{le="+Inf"} 3`,
		"lat_ms_sum 105.5",
		"lat_ms_count 3",
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("exposition output:\n%s\nwant:\n%s", buf.String(), want)
	}
}
