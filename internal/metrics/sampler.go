package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// CounterSample is one counter's reading at a sample point: the delta
// since the previous sample plus the running total.
type CounterSample struct {
	Name  string `json:"name"`
	Delta int64  `json:"delta"`
	Total int64  `json:"total"`
}

// GaugeSample is one gauge's point-in-time level.
type GaugeSample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSample summarizes one histogram at a sample point: cumulative
// count/sum plus point-in-time quantile upper bounds.
type HistSample struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Sample is one time-series point: the registry snapshotted at an ether
// timestamp. Counters carry deltas (rates fall out of delta/Δt), gauges
// and histogram quantiles are point-in-time.
type Sample struct {
	At         int64           `json:"at"`
	Counters   []CounterSample `json:"counters,omitempty"`
	Gauges     []GaugeSample   `json:"gauges,omitempty"`
	Histograms []HistSample    `json:"histograms,omitempty"`
}

// Sampler turns a Registry's cumulative instruments into an append-only
// time series on the ether clock: each Sample() call snapshots every
// instrument in sorted-name order and records counter deltas against the
// previous sample. Like the registry it reads, a Sampler is
// single-threaded — the simulation loop drives it between rounds.
type Sampler struct {
	reg    *Registry
	prev   map[string]int64
	series []Sample

	// OnSample, when set, observes each sample as it is taken (e.g. to
	// publish it to a live endpoint or stream it to disk).
	OnSample func(Sample)
}

// NewSampler builds a sampler over reg.
func NewSampler(reg *Registry) *Sampler {
	return &Sampler{reg: reg, prev: map[string]int64{}}
}

// Sample snapshots the registry at ether time `at`, appends the point to
// the series, and returns it.
func (s *Sampler) Sample(at int64) Sample {
	out := Sample{At: at}

	names := make([]string, 0, len(s.reg.counters))
	for name := range s.reg.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.reg.counters[name].v
		out.Counters = append(out.Counters, CounterSample{
			Name: name, Delta: v - s.prev[name], Total: v,
		})
		s.prev[name] = v
	}

	names = names[:0]
	for name := range s.reg.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Gauges = append(out.Gauges, GaugeSample{Name: name, Value: s.reg.gauges[name].v})
	}

	names = names[:0]
	for name := range s.reg.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.reg.hists[name]
		out.Histograms = append(out.Histograms, HistSample{
			Name: name, Count: h.n, Sum: h.sum,
			P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		})
	}

	s.series = append(s.series, out)
	if s.OnSample != nil {
		s.OnSample(out)
	}
	return out
}

// Series returns the samples taken so far (the live backing array; do
// not mutate).
func (s *Sampler) Series() []Sample { return s.series }

// WriteJSONL writes the series one sample per line — deterministic for
// identical recorded state, and `jq`-able while a run is still going
// when streamed through an OnSample hook instead.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range s.series {
		if err := enc.Encode(&s.series[i]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalSample renders one sample as its JSONL line, newline included —
// what an OnSample hook streams to disk.
func MarshalSample(sm Sample) ([]byte, error) {
	b, err := json.Marshal(sm)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
