package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/metrics"
	"megamimo/internal/tracefmt"
)

// startServer boots a server on a loopback ephemeral port.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// get fetches a path from the test server.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthzCleanRun(t *testing.T) {
	s := startServer(t, Config{Meta: tracefmt.Meta{SampleRate: 10e6, CarrierHz: 2.437e9}})
	for i := 0; i < 20; i++ {
		s.ConsumeTrace(core.TraceEvent{Seq: int64(i), At: int64(i * 100), Kind: core.KindSlaveRatio,
			Attrs: core.TraceAttrs{AP: 1, PhaseErrRad: 0.01}})
	}
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("clean /healthz status %d: %s", code, body)
	}
	var h struct {
		Healthy bool `json:"healthy"`
		Done    bool `json:"done"`
		Events  int  `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Healthy || h.Done || h.Events != 20 {
		t.Fatalf("clean verdict %+v", h)
	}
	s.MarkDone()
	_, body = get(t, s, "/healthz")
	if !strings.Contains(body, `"done": true`) {
		t.Fatalf("done not reported: %s", body)
	}
}

func TestHealthzViolation(t *testing.T) {
	s := startServer(t, Config{Meta: tracefmt.Meta{SampleRate: 10e6, CarrierHz: 2.437e9}, Window: 16})
	for i := 0; i < 20; i++ {
		s.ConsumeTrace(core.TraceEvent{Seq: int64(i), At: int64(i * 100), Kind: core.KindSlaveRatio,
			Attrs: core.TraceAttrs{AP: 2, PhaseErrRad: 0.9}})
	}
	code, body := get(t, s, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("violating /healthz status %d, want 503: %s", code, body)
	}
	var h struct {
		Healthy        bool `json:"healthy"`
		FirstViolation *struct {
			Check string `json:"check"`
			At    int64  `json:"at"`
			AP    int    `json:"ap"`
		} `json:"first_violation"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Healthy || h.FirstViolation == nil {
		t.Fatalf("violation not surfaced: %s", body)
	}
	if h.FirstViolation.Check != "phase-budget" || h.FirstViolation.AP != 2 || h.FirstViolation.At <= 0 {
		t.Fatalf("first violation %+v", h.FirstViolation)
	}
	if s.Healthy() {
		t.Fatal("Healthy() disagrees with /healthz")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("unpublished /metrics = %d %q", code, body)
	}
	reg := metrics.NewRegistry()
	reg.Counter("core_joint_tx_total").Add(7)
	reg.Histogram("lat_ms", []float64{1, 10}).Observe(3)
	if err := s.PublishMetrics(reg); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE core_joint_tx_total counter",
		"core_joint_tx_total 7",
		`lat_ms_bucket{le="+Inf"} 1`,
		"lat_ms_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestTraceEndpoint checks /trace serves a parseable JSONL tail bounded
// by the ring, newest events retained.
func TestTraceEndpoint(t *testing.T) {
	meta := tracefmt.Meta{SampleRate: 10e6, CarrierHz: 2.437e9, APs: 2, Clients: 2}
	s := startServer(t, Config{Meta: meta, TraceTail: 4})
	for i := 0; i < 10; i++ {
		s.ConsumeTrace(core.TraceEvent{Seq: int64(i), At: int64(i), Kind: core.KindTraffic})
	}
	code, body := get(t, s, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	gotMeta, evs, err := tracefmt.ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace output not a valid JSONL trace: %v\n%s", err, body)
	}
	if gotMeta != meta {
		t.Fatalf("/trace meta %+v, want %+v", gotMeta, meta)
	}
	if len(evs) != 4 {
		t.Fatalf("/trace tail has %d events, want ring cap 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("/trace tail not the newest events: %+v", evs)
	}
}

func TestPprofMounted(t *testing.T) {
	s := startServer(t, Config{})
	code, body := get(t, s, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}
