// Package obs is the serving surface of the streaming telemetry
// pipeline: an HTTP server that exposes a running simulation's metrics
// (Prometheus text exposition), its online anomaly-gate verdict
// (/healthz), a live JSONL tail of the flight recorder (/trace), and the
// Go pprof handlers — so a long soak or chaos run can be watched and
// profiled while it runs instead of autopsied afterwards.
//
// The server splits cleanly from the single-threaded simulation: the sim
// goroutine pushes artifacts in (trace events via ConsumeTrace, rendered
// metrics via PublishMetrics) under the server's mutex, and HTTP handler
// goroutines only ever read published state. Nothing in the simulation's
// hot path waits on a request.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"megamimo/internal/core"
	"megamimo/internal/metrics"
	"megamimo/internal/tracefmt"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address (e.g. ":8080", "127.0.0.1:0").
	Addr string
	// Meta is the run's trace metadata: /trace stamps it on the tail and
	// the online monitor needs its rates for the cfo-mandate check.
	Meta tracefmt.Meta
	// Budget holds the anomaly thresholds (zero fields take defaults).
	Budget tracefmt.Budget
	// Window is the monitor's sliding-window length
	// (0 = tracefmt.DefaultMonitorWindow).
	Window int
	// TraceTail bounds the /trace live tail ring (0 = 4096 events).
	TraceTail int
}

// Server serves the observability endpoints for one run.
type Server struct {
	mu      sync.Mutex
	meta    tracefmt.Meta
	monitor *tracefmt.Monitor
	tail    []core.TraceEvent
	tailCap int
	head    int
	prom    []byte
	done    bool
	ckPath  string
	ckAt    int64

	ln  net.Listener
	srv *http.Server
}

// New starts a server listening on cfg.Addr. Close stops it.
func New(cfg Config) (*Server, error) {
	window := cfg.Window
	if window <= 0 {
		window = tracefmt.DefaultMonitorWindow
	}
	tailCap := cfg.TraceTail
	if tailCap <= 0 {
		tailCap = 4096
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		meta:    cfg.Meta,
		monitor: tracefmt.NewMonitor(cfg.Meta, cfg.Budget, window),
		tailCap: tailCap,
		ln:      ln,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		// Serve returns ErrServerClosed on Close; nothing to do either way —
		// the sim outcome never depends on the observer.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP server.
func (s *Server) Close() error { return s.srv.Close() }

// ConsumeTrace implements core.TraceSink: every event feeds the online
// anomaly gate and the bounded /trace tail ring. Tee it with a streaming
// file sink to get both live verdicts and a full on-disk trace.
func (s *Server) ConsumeTrace(e core.TraceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.monitor.Observe(e)
	if len(s.tail) < s.tailCap {
		s.tail = append(s.tail, e)
		return
	}
	s.tail[s.head] = e
	s.head = (s.head + 1) % s.tailCap
}

// PublishMetrics renders the registry's Prometheus exposition and
// publishes it to /metrics. Call it from the goroutine that owns the
// registry (e.g. a metrics.Sampler OnSample hook); handlers serve the
// published bytes and never touch the registry itself.
func (s *Server) PublishMetrics(reg *metrics.Registry) error {
	var buf []byte
	w := &appendWriter{buf: &buf}
	if err := reg.WritePrometheus(w); err != nil {
		return err
	}
	s.mu.Lock()
	s.prom = buf
	s.mu.Unlock()
	return nil
}

// appendWriter collects writes into a byte slice.
type appendWriter struct{ buf *[]byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// PublishCheckpoint records the run's latest durable checkpoint (path
// and the ether time it captured). /healthz reports both, plus the
// checkpoint's age against the last observed event — the bound on how
// much simulated time a resume would replay.
func (s *Server) PublishCheckpoint(path string, at int64) {
	s.mu.Lock()
	s.ckPath, s.ckAt = path, at
	s.mu.Unlock()
}

// MarkDone records that the run completed; /healthz reports it so
// pollers can distinguish "still going" from "finished".
func (s *Server) MarkDone() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
}

// Healthy reports the online gate's verdict.
func (s *Server) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.monitor.Healthy()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := s.prom
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(body)
}

// violationJSON is one tripped check on the wire.
type violationJSON struct {
	Check  string `json:"check"`
	At     int64  `json:"at"`
	AP     int    `json:"ap"`
	Stream int    `json:"stream"`
	Msg    string `json:"msg"`
}

// healthJSON is the /healthz body.
type healthJSON struct {
	Healthy        bool            `json:"healthy"`
	Done           bool            `json:"done"`
	Events         int             `json:"events"`
	LastAt         int64           `json:"last_at"`
	FirstViolation *violationJSON  `json:"first_violation,omitempty"`
	Tripped        []violationJSON `json:"tripped,omitempty"`
	// LastCheckpoint is the newest durable checkpoint's path;
	// CheckpointAt its capture time and CheckpointAge how far the run has
	// advanced past it (ether samples).
	LastCheckpoint string `json:"last_checkpoint,omitempty"`
	CheckpointAt   int64  `json:"checkpoint_at,omitempty"`
	CheckpointAge  int64  `json:"checkpoint_age_samples,omitempty"`
}

func violationWire(v tracefmt.Violation) violationJSON {
	return violationJSON{
		Check:  v.Anomaly.Check,
		At:     v.At,
		AP:     v.Anomaly.AP,
		Stream: v.Anomaly.Stream,
		Msg:    v.Anomaly.Msg,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := healthJSON{
		Healthy: s.monitor.Healthy(),
		Done:    s.done,
		Events:  s.monitor.Events(),
		LastAt:  s.monitor.LastAt(),
	}
	if v, ok := s.monitor.FirstViolation(); ok {
		vw := violationWire(v)
		resp.FirstViolation = &vw
	}
	if s.ckPath != "" {
		resp.LastCheckpoint = s.ckPath
		resp.CheckpointAt = s.ckAt
		if last := s.monitor.LastAt(); last > s.ckAt {
			resp.CheckpointAge = last - s.ckAt
		}
	}
	for _, v := range s.monitor.Tripped() {
		resp.Tripped = append(resp.Tripped, violationWire(v))
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if !resp.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	events := make([]core.TraceEvent, 0, len(s.tail))
	events = append(events, s.tail[s.head:]...)
	events = append(events, s.tail[:s.head]...)
	meta := s.meta
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	line, err := tracefmt.MarshalHeader(meta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(line); err != nil {
		return
	}
	for i := range events {
		line, err := tracefmt.MarshalEvent(events[i])
		if err != nil {
			// The tracer validated the kind on entry; a failure here means
			// the tail was corrupted — truncate the stream.
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
	}
}

// String describes the serving surface for startup banners.
func (s *Server) String() string {
	return fmt.Sprintf("observability: http://%s (/metrics /healthz /trace /debug/pprof)", s.Addr())
}
