package sync

import (
	"math"
	"reflect"
	"testing"

	"megamimo/internal/cmplxs"
	"megamimo/internal/ofdm"
	"megamimo/internal/units"
)

// synthRef builds a deterministic unit-magnitude reference channel on the
// occupied bins.
func synthRef() []complex128 {
	ref := make([]complex128, ofdm.NFFT)
	for _, k := range occCarriers {
		ref[ofdm.Bin(k)] = cmplxs.Expi(units.Radians(0.13 * float64(k)))
	}
	return ref
}

// observeAt returns the reference rotated by the true oscillator advance at
// ether time t: a noiseless received channel snapshot.
func observeAt(ref []complex128, cfo units.RadPerSample, t int64) []complex128 {
	rot := cmplxs.Expi(units.PhaseAdvance(cfo, units.Samples(t)))
	cur := make([]complex128, ofdm.NFFT)
	for _, k := range occCarriers {
		b := ofdm.Bin(k)
		cur[b] = ref[b] * rot
	}
	return cur
}

// predictionError measures how far a strategy's predicted correction at
// time t is from the true oscillator advance.
func predictionError(s Strategy, ps *Peer, cfo units.RadPerSample, t int64) float64 {
	c := s.Predict(ps, t)
	b := ofdm.Bin(occCarriers[0])
	truth := cmplxs.Expi(units.PhaseAdvance(cfo, units.Samples(t)))
	return math.Abs(units.Ratio(cmplxs.Phase(c.Ratio[b]*conj(truth)), 1))
}

// TestStrategiesConvergeUnderZeroDrift seeds every strategy with a wrong
// initial CFO against oscillators that are perfectly locked, and checks the
// predicted phase converges toward zero error as noiseless measurements
// accumulate.
func TestStrategiesConvergeUnderZeroDrift(t *testing.T) {
	const step = 40_000 // one BeamSync burst interval per measurement
	const horizon = 2_000
	ref := synthRef()
	for _, name := range []string{"header", "airsync", "beamsync"} {
		s, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		ps := &Peer{}
		// The capture's CFO estimate is wrong by 1e-5 rad/sample — inside
		// the 2π ambiguity bound over one measurement gap (1e-5 × 40 000 =
		// 0.4 rad < π) — while the true oscillators never drift.
		s.Init(ps, RefCapture{Ref: ref, RefAt: 0, CFO: 1e-5, Baseline: 64})
		first := predictionError(s, ps, 0, step/4)
		var at int64
		for k := 1; k <= 16; k++ {
			at = int64(k) * step
			if _, err := s.Measure(ps, observeAt(ref, 0, at), at); err != nil {
				t.Fatalf("%s: measure %d: %v", name, k, err)
			}
		}
		last := predictionError(s, ps, 0, at+horizon)
		if last >= first {
			t.Errorf("%s: prediction error grew under zero drift: %.6f -> %.6f rad", name, first, last)
		}
		if last > 0.02 {
			t.Errorf("%s: prediction error %.6f rad after 16 clean measurements, want < 0.02", name, last)
		}
	}
}

// TestStrategiesTrackDrift checks every strategy's prediction stays inside
// the π/18 nulling budget while tracking a constant oscillator drift up to
// the 20 ppm mandate (≈1.2e-3 rad/sample relative at 10 MHz sampling from
// a 2.4 GHz carrier at ±10 ppm each side).
func TestStrategiesTrackDrift(t *testing.T) {
	const step = 40_000
	const horizon = 2_000
	ref := synthRef()
	for _, cfo := range []units.RadPerSample{1e-5, 3e-4, 1.2e-3} {
		for _, name := range []string{"header", "airsync", "beamsync"} {
			s, err := Parse(name)
			if err != nil {
				t.Fatal(err)
			}
			ps := &Peer{}
			s.Init(ps, RefCapture{Ref: ref, RefAt: 0, CFO: cfo, Baseline: 64})
			var at int64
			for k := 1; k <= 16; k++ {
				at = int64(k) * step
				if _, err := s.Measure(ps, observeAt(ref, cfo, at), at); err != nil {
					t.Fatalf("%s: measure %d: %v", name, k, err)
				}
			}
			if err := predictionError(s, ps, cfo, at+horizon); err > math.Pi/18 {
				t.Errorf("%s at cfo %v: prediction error %.4f rad exceeds π/18", name, cfo, err)
			}
		}
	}
}

// TestPredictDoesNotMutate pins the Strategy contract's only aliasing rule:
// Predict must leave the peer untouched.
func TestPredictDoesNotMutate(t *testing.T) {
	ref := synthRef()
	for _, name := range Names() {
		s, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		ps := &Peer{}
		s.Init(ps, RefCapture{Ref: ref, RefAt: 0, CFO: 5e-5, Baseline: 64})
		if _, err := s.Measure(ps, observeAt(ref, 5e-5, 9_000), 9_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := *ps
		s.Predict(ps, 55_000)
		if !reflect.DeepEqual(*ps, before) {
			t.Errorf("%s: Predict mutated the peer", name)
		}
	}
}

// TestConfidenceContract checks the abstain semantics every caller relies
// on: zero budget always abstains, and a fresh measurement is trusted.
func TestConfidenceContract(t *testing.T) {
	ref := synthRef()
	for _, name := range Names() {
		s, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		ps := &Peer{}
		s.Init(ps, RefCapture{Ref: ref, RefAt: 0, CFO: 0, Baseline: 64})
		if _, err := s.Measure(ps, observeAt(ref, 0, 1_000), 1_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c := s.Confidence(ps, 1_100, 0); c > 0 {
			t.Errorf("%s: confidence %v with zero budget, want ≤ 0 (abstain)", name, c)
		}
		if c := s.Confidence(ps, 1_100, 1_000_000); c <= 0 {
			t.Errorf("%s: confidence %v right after a measurement, want > 0", name, c)
		}
	}
}

// TestParseRegistry pins the registry names and the unknown-name error.
func TestParseRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, s.Name())
		}
	}
	if s, err := Parse(""); err != nil || s.Name() != "header" {
		t.Errorf("Parse(\"\") = %v, %v; want the header scheme", s, err)
	}
	if _, err := Parse("nonesuch"); err == nil {
		t.Error("Parse(\"nonesuch\") succeeded, want error")
	}
}
