package sync

import (
	"megamimo/internal/units"
)

// BeamSync is the periodic over-the-air calibration scheme of "BeamSync:
// Over-The-Air Synchronization for Distributed Massive MIMO Systems"
// (arXiv 2311.11070): instead of measuring phase on every transmission,
// the array runs a beam-based calibration burst every Interval samples and
// extrapolates between bursts from the burst-to-burst CFO estimate. The
// airtime saved between bursts is the scheme's selling point; the cost is
// that every inter-burst correction is a pure prediction whose error grows
// with the burst spacing and the CFO estimation error.
//
// In this simulation the calibration burst reuses the lead's header
// observation (the beacons are already on the air); observations between
// bursts are *not* fused — only their innovation is reported as telemetry,
// the genie view a testbed gets from its ground-truth instrumentation —
// so the flight recorder shows the true inter-burst extrapolation error
// each strategy's π/18 budget is judged on.
type BeamSync struct {
	// Interval is the calibration-burst spacing in ether samples: an
	// observation is fused only when at least Interval has passed since
	// the last fused burst. Zero selects the default (40 000 samples,
	// 4 ms at 10 MHz).
	Interval units.Ticks
	// Gain is the EWMA gain of the burst-to-burst CFO update (0 selects
	// the default 0.25).
	Gain float64
	// IntervalScale models a mistuned deployment: the CFO estimator
	// divides each burst's phase advance by IntervalScale × the true
	// elapsed time (1 = correctly tuned; 0 selects 1). A scale ≪ 1
	// inflates every CFO estimate by 1/scale — the deliberately mistuned
	// variant the anomaly gate's ±40 ppm cfo-mandate must catch.
	IntervalScale float64
}

// defaultBeamInterval is 4 ms at the USRP testbed's 10 MHz.
const defaultBeamInterval units.Ticks = 40_000

// NewBeamSync returns BeamSync with its default burst spacing.
func NewBeamSync() Strategy {
	return BeamSync{Interval: defaultBeamInterval, Gain: 0.25, IntervalScale: 1}
}

// MistunedBeamSync returns a deliberately misconfigured BeamSync whose CFO
// estimator believes the bursts are 100× closer together than they are,
// inflating every CFO estimate by 100×. CI uses it to prove the anomaly
// gate rejects a broken strategy: the reported CFO blows through the
// ±40 ppm cfo-mandate even when the real oscillators are nearly aligned.
func MistunedBeamSync() Strategy {
	return BeamSync{Interval: defaultBeamInterval, Gain: 0.25, IntervalScale: 0.01}
}

func (s BeamSync) interval() units.Ticks {
	if s.Interval > 0 {
		return s.Interval
	}
	return defaultBeamInterval
}

func (s BeamSync) gain() float64 {
	if s.Gain > 0 {
		return s.Gain
	}
	return 0.25
}

func (s BeamSync) scale() float64 {
	if s.IntervalScale > 0 {
		return s.IntervalScale
	}
	return 1
}

// Name implements Strategy. A scale below 1 is the mistuned variant (a
// scale above 1 would deflate the CFO the same way; the registry only
// ships the inflating one).
func (s BeamSync) Name() string {
	if s.scale() < 1 {
		return "beamsync-mistuned"
	}
	return "beamsync"
}

// Init implements Strategy: the capture is burst zero.
func (s BeamSync) Init(ps *Peer, ref RefCapture) {
	ps.Ref = ref.Ref
	ps.RefAt = ref.RefAt
	ps.CFO = units.Scale(ref.CFO, 1/s.scale())
	ps.FuseWeight = ref.Baseline * ref.Baseline
	ps.LastPhase = 0
	ps.LastAt = ref.RefAt
	ps.HasPhase = true
	ps.BurstAt = ref.RefAt
	ps.BurstPhase = 0
	ps.BurstInit = true
}

// Measure implements Strategy. On a burst (≥ Interval since the last fused
// one) the observation calibrates directly: the measured ratio is applied,
// the burst-to-burst phase advance updates the CFO, and the burst snapshot
// moves forward. Between bursts the observation is used only to compute
// the telemetry residual; the applied correction is the extrapolation from
// the last burst.
func (s BeamSync) Measure(ps *Peer, cur []complex128, at int64) (Correction, error) {
	dt := at - ps.BurstAt
	if !ps.BurstInit || units.Ticks(dt) >= s.interval() {
		// Calibration burst: measure, fuse, apply directly.
		slopeMeas, q := ratioComponents(cur, ps.Ref)
		slope := ps.trackSlope(slopeMeas, float64(at-ps.RefAt))
		z := commonPhase(q, slope)
		var innovation units.Radians
		if ps.BurstInit && dt > 0 {
			// The current CFO resolves the 2π ambiguity of the burst's
			// phase advance; the mistuned estimator divides by the wrong
			// elapsed time, inflating the rate by 1/scale.
			predicted := units.PhaseAdvance(ps.CFO, units.Samples(dt))
			innovation = wrapInnovation(z, ps.BurstPhase, predicted)
			rate := units.RadiansOver(predicted+innovation, units.Samples(float64(dt)*s.scale()))
			g := s.gain()
			ps.CFO = units.Scale(ps.CFO, 1-g) + units.Scale(rate, g)
		}
		ps.BurstAt = at
		ps.BurstPhase = z
		ps.BurstInit = true
		ps.LastPhase = z
		ps.LastAt = at
		ps.HasPhase = true
		return Correction{
			Ratio:    composeRatio(q, slope),
			At:       at,
			RefAt:    ps.RefAt,
			CFO:      ps.CFO,
			Residual: innovation,
		}, nil
	}

	// Between bursts: apply the extrapolation; the observation only feeds
	// the genie residual so the flight recorder sees the true inter-burst
	// error.
	c := s.Predict(ps, at)
	slope := ps.SlopeRate * float64(at-ps.RefAt)
	_, q := ratioComponents(cur, ps.Ref)
	z := commonPhase(q, slope)
	predicted := units.PhaseAdvance(ps.CFO, units.Samples(dt))
	c.Residual = wrapInnovation(z, ps.BurstPhase, predicted)
	return c, nil
}

// Predict implements Strategy: extrapolate from the last burst on the
// tracked CFO.
func (s BeamSync) Predict(ps *Peer, at int64) Correction {
	phase := ps.BurstPhase + units.PhaseAdvance(ps.CFO, units.Samples(at-ps.BurstAt))
	slope := ps.SlopeRate * float64(at-ps.RefAt)
	return Correction{
		Ratio: buildRatio(phase, slope),
		At:    at,
		RefAt: ps.RefAt,
		CFO:   ps.CFO,
	}
}

// Confidence implements Strategy: inter-burst extrapolation is the
// strategy's normal operating mode, so confidence stays positive for a
// few intervals past the last burst (capped by the caller's staleness
// budget) and then collapses.
func (s BeamSync) Confidence(ps *Peer, at int64, budget units.Ticks) float64 {
	if !ps.BurstInit || !ps.HasPhase || budget <= 0 {
		return 0
	}
	age := units.Ticks(at - ps.BurstAt)
	horizon := 4 * s.interval()
	if budget < horizon {
		horizon = budget
	}
	if age > horizon {
		return 0
	}
	return units.Ratio(horizon-age+1, horizon+1)
}

// wrapInnovation returns the wrapped difference between a measured phase
// and the snapshot-plus-advance prediction (the trackCFO innovation form).
func wrapInnovation(z, snapshot, advance units.Radians) units.Radians {
	return units.WrapRadians(z - snapshot - advance)
}
