package sync

import (
	"math"

	"megamimo/internal/cmplxs"
	"megamimo/internal/ofdm"
	"megamimo/internal/units"
)

// headerSync is the paper's scheme (§5.2): every joint transmission opens
// with the lead's in-band sync header; each slave measures the per-bin
// ratio ĥ(t)/ĥ(0) against its stored reference — a direct phase
// measurement that cannot accumulate error — and refines a long-term CFO
// average for intra-packet tracking. Prediction (used only when a header
// is lost) extrapolates Δφ = Δω̂·Δt, and confidence decays linearly to
// zero over the caller's staleness budget since the last good
// measurement.
type headerSync struct{}

// Header returns the paper's sync-header strategy.
func Header() Strategy { return headerSync{} }

// Name implements Strategy.
func (headerSync) Name() string { return "header" }

// Init implements Strategy: store the reference, seed the long-term CFO
// with the capture's packet-wide estimate (a baseline of thousands of
// samples, so the rad/sample error is orders of magnitude below a single
// header's lag-64 estimate) and let the reference itself be the first
// phase snapshot (phase(ĥ/ĥ) = 0 at RefAt) so the very next packet
// already fuses a long baseline. The slope tracker deliberately survives
// re-measurement: the sampling-offset rate is an oscillator property, not
// a channel property.
func (headerSync) Init(ps *Peer, ref RefCapture) {
	ps.Ref = ref.Ref
	ps.RefAt = ref.RefAt
	ps.CFO = ref.CFO
	ps.FuseWeight = ref.Baseline * ref.Baseline
	ps.LastPhase = 0
	ps.LastAt = ref.RefAt
	ps.HasPhase = true
}

// Measure implements Strategy: fit the scalar-plus-slope ratio against the
// reference, fuse the slope and CFO trackers, and return the measured
// correction. The residual is the innovation of this packet's measured
// phase against the long-term CFO prediction — the residual phase error
// the π/18 nulling budget (§11.1b) bounds.
func (headerSync) Measure(ps *Peer, cur []complex128, at int64) (Correction, error) {
	slopeMeas, q := ratioComponents(cur, ps.Ref)
	slope := ps.trackSlope(slopeMeas, float64(at-ps.RefAt))
	ratio := composeRatio(q, slope)
	resid := ps.trackCFO(ratio, at)
	return Correction{Ratio: ratio, At: at, RefAt: ps.RefAt, CFO: ps.CFO, Residual: resid}, nil
}

// Predict implements Strategy: extrapolate the correction from the
// long-term CFO estimate alone, Δφ = Δω̂·Δt on every occupied bin. It is
// the ExtrapolatePhase ablation's correction and the bounded-staleness
// fallback when a sync-header measurement fails.
func (headerSync) Predict(ps *Peer, at int64) Correction {
	ratio := make([]complex128, ofdm.NFFT)
	phase := units.PhaseAdvance(ps.CFO, units.Samples(at-ps.RefAt))
	for _, b := range occBins {
		ratio[b] = cmplxs.Expi(phase)
	}
	return Correction{Ratio: ratio, At: at, RefAt: ps.RefAt, CFO: ps.CFO}
}

// Confidence implements Strategy: full trust right after a measurement,
// decaying linearly to zero one sample past the staleness budget — so the
// caller's abstain rule (confidence ≤ 0) reproduces the §5.2b bounded
// staleness exactly: extrapolate while age ≤ budget, withhold beyond it.
func (headerSync) Confidence(ps *Peer, at int64, budget units.Ticks) float64 {
	if !ps.HasPhase || budget <= 0 {
		return 0
	}
	age := units.Ticks(at - ps.LastAt)
	if age > budget {
		return 0
	}
	return units.Ratio(budget-age+1, budget+1)
}

// trackCFO refines the slave's long-term CFO with the phase advance of the
// ratio between consecutive packets: Δφ/Δt over a baseline of thousands of
// samples, which is how "a simple long term average for the frequency
// offset" (§1) reaches intra-packet accuracy. The current estimate
// resolves the 2π ambiguity; measurements fuse precision-weighted
// (variance ∝ 1/Δt²), and the total weight is capped so slow oscillator
// wander is still tracked. Very long idle gaps (where ambiguity
// resolution would be unsafe) only reset the phase snapshot. It returns the
// measured innovation (the phase the prediction missed by, rad) as the
// residual-phase-error telemetry; 0 when no fusion happened.
func (ps *Peer) trackCFO(ratio []complex128, at int64) units.Radians {
	var sum complex128
	for _, v := range ratio {
		sum += v
	}
	phase := cmplxs.Phase(sum)
	defer func() {
		ps.LastPhase = phase
		ps.LastAt = at
		ps.HasPhase = true
	}()
	if !ps.HasPhase {
		return 0
	}
	dt := float64(at - ps.LastAt)
	if dt <= 0 || dt > 2e5 {
		return 0
	}
	predicted := units.PhaseAdvance(ps.CFO, units.Samples(dt))
	resid := cmplxs.WrapPhase(phase - ps.LastPhase - predicted)
	meas := units.RadiansOver(predicted+resid, units.Samples(dt))
	wMeas := dt * dt
	const weightCap = 1e11 // forget beyond ~(300k samples)² so wander tracks
	total := ps.FuseWeight + wMeas
	ps.CFO = units.Div(units.Scale(ps.CFO, ps.FuseWeight)+units.Scale(meas, wMeas), total)
	ps.FuseWeight = math.Min(total, weightCap)
	return resid
}
