package sync

import (
	"math"

	"megamimo/internal/cmplxs"
	"megamimo/internal/units"
)

// AirSync is the out-of-band reference scheme of "AirSync: Enabling
// Distributed Multiuser MIMO with Full Spatial Multiplexing" (arXiv
// 1205.6862): slaves continuously track the lead's reference with a
// Kalman-style two-state predictor over [phase, CFO] and apply the
// *predicted* phase rather than each packet's raw measurement. Against
// the header scheme the trade is variance for lag: the filter smooths
// measurement noise (AirSync reports ~2.5° residual error), but under a
// fast drift step the filtered phase chases the truth instead of
// snapping to it.
//
// In this simulation the tracked reference rides the same observations
// the header scheme uses — the lead's headers stand in for AirSync's
// dedicated out-of-band tone — so the head-to-head isolates the
// estimator, not the airtime budget.
type AirSync struct {
	// ProcessNoise is the assumed phase random-walk intensity
	// (rad²/sample): how fast the filter lets the true phase wander off
	// its CFO-driven track. Zero selects the default.
	ProcessNoise float64
	// MeasNoise is the assumed per-measurement phase variance (rad²).
	// Zero selects the default.
	MeasNoise float64
	// CFOWalk is the assumed CFO random-walk intensity
	// ((rad/sample)²/sample). Zero selects the default.
	//lint:ignore units a second-moment intensity, (rad/sample)² per sample — no first-order units type carries it
	CFOWalk float64
}

// NewAirSync returns AirSync with its default filter tuning. The defaults
// assume laboratory-grade oscillators between headers (tiny phase wander,
// slow CFO drift) and header-grade phase measurements (~0.01 rad std).
func NewAirSync() Strategy {
	return AirSync{ProcessNoise: 1e-9, MeasNoise: 1e-4, CFOWalk: 1e-16}
}

func (s AirSync) processNoise() float64 {
	if s.ProcessNoise > 0 {
		return s.ProcessNoise
	}
	return 1e-9
}

func (s AirSync) measNoise() float64 {
	if s.MeasNoise > 0 {
		return s.MeasNoise
	}
	return 1e-4
}

func (s AirSync) cfoWalk() float64 {
	if s.CFOWalk > 0 {
		return s.CFOWalk
	}
	return 1e-16
}

// Name implements Strategy.
func (AirSync) Name() string { return "airsync" }

// Init implements Strategy: seed the filter mean from the capture (phase 0
// at RefAt by construction, CFO from the packet-wide estimate) and the
// covariance from the capture baseline.
func (s AirSync) Init(ps *Peer, ref RefCapture) {
	ps.Ref = ref.Ref
	ps.RefAt = ref.RefAt
	ps.CFO = ref.CFO
	ps.FuseWeight = ref.Baseline * ref.Baseline
	ps.LastPhase = 0
	ps.LastAt = ref.RefAt
	ps.HasPhase = true
	ps.KPhase = 0
	ps.KCFO = ref.CFO
	r := s.measNoise()
	ps.P00 = r
	ps.P01 = 0
	//lint:ignore units the CFO estimate's variance, (rad/sample)² — covariance entries stay bare float64
	cfoVar := r
	if ref.Baseline > 0 {
		cfoVar = r / (ref.Baseline * ref.Baseline)
	}
	ps.P11 = cfoVar
	ps.KInit = true
}

// Measure implements Strategy: extract this observation's scalar phase,
// run one Kalman predict/update cycle, and return the *posterior filtered*
// phase — not the raw measurement — as the applied correction. The
// residual is the filter innovation.
func (s AirSync) Measure(ps *Peer, cur []complex128, at int64) (Correction, error) {
	slopeMeas, q := ratioComponents(cur, ps.Ref)
	slope := ps.trackSlope(slopeMeas, float64(at-ps.RefAt))
	z := commonPhase(q, slope) // wrapped measured phase advance since RefAt

	dt := float64(at - ps.LastAt)
	var innovation units.Radians
	if !ps.KInit || dt < 0 {
		// Cold start (or a clock discontinuity): trust the measurement.
		ps.KPhase = z
		ps.P00, ps.P01, ps.P11 = s.measNoise(), 0, s.measNoise()
		ps.KInit = true
	} else {
		// Time update: x ← F·x with F = [[1, dt], [0, 1]],
		// P ← F·P·Fᵀ + Q with Q = diag(qp·dt, qw·dt).
		pred := ps.KPhase + units.PhaseAdvance(ps.KCFO, units.Samples(dt))
		p00 := ps.P00 + dt*(2*ps.P01+dt*ps.P11) + s.processNoise()*dt
		p01 := ps.P01 + dt*ps.P11
		p11 := ps.P11 + s.cfoWalk()*dt
		// Measurement update against the wrapped phase: the innovation is
		// wrapped, which keeps the unwrapped state consistent as long as
		// the prediction error between observations stays under π.
		innovation = cmplxs.WrapPhase(z - pred)
		s00 := p00 + s.measNoise()
		k0 := p00 / s00
		k1 := p01 / s00
		ps.KPhase = pred + units.Scale(innovation, k0)
		ps.KCFO += units.RadiansOver(units.Scale(innovation, k1), 1)
		ps.P00 = (1 - k0) * p00
		ps.P01 = (1 - k0) * p01
		ps.P11 = p11 - k1*p01
	}
	ps.CFO = ps.KCFO
	ps.LastPhase = z
	ps.LastAt = at
	ps.HasPhase = true
	return Correction{
		Ratio:    buildRatio(ps.KPhase, slope),
		At:       at,
		RefAt:    ps.RefAt,
		CFO:      ps.KCFO,
		Residual: innovation,
	}, nil
}

// Predict implements Strategy: propagate the filter mean to at without
// updating it.
func (s AirSync) Predict(ps *Peer, at int64) Correction {
	dt := float64(at - ps.LastAt)
	phase := ps.KPhase + units.PhaseAdvance(ps.KCFO, units.Samples(dt))
	slope := ps.SlopeRate * float64(at-ps.RefAt)
	return Correction{
		Ratio: buildRatio(phase, slope),
		At:    at,
		RefAt: ps.RefAt,
		CFO:   ps.KCFO,
	}
}

// Confidence implements Strategy: propagate the phase variance to at and
// compare the predicted standard deviation against the π/18 nulling
// budget — confidence reaches zero when the filter expects to miss by the
// whole budget, or past the caller's hard staleness bound.
func (s AirSync) Confidence(ps *Peer, at int64, budget units.Ticks) float64 {
	if !ps.KInit || !ps.HasPhase || budget <= 0 {
		return 0
	}
	if units.Ticks(at-ps.LastAt) > budget {
		return 0
	}
	dt := float64(at - ps.LastAt)
	if dt < 0 {
		return 0
	}
	p00 := ps.P00 + dt*(2*ps.P01+dt*ps.P11) + s.processNoise()*dt
	if p00 <= 0 {
		return 1
	}
	return 1 - math.Sqrt(p00)/(math.Pi/18)
}
