// Package sync holds the pluggable distributed phase-synchronization
// strategies: the measure→predict→correct loop that keeps every slave AP's
// oscillator phase locked to the lead's so the joint zero-forcing nulls
// survive (§5). The paper's in-band sync-header scheme is one Strategy
// among several; the others (AirSync's Kalman-tracked out-of-band
// reference, BeamSync's periodic beam calibration) implement the same
// contract so internal/experiment can race them head-to-head through the
// same drift, chaos and anomaly-gate machinery.
//
// A Strategy is stateless configuration; all per-(slave, lead) state lives
// in the Peer it is handed, so one Strategy value is safe to share across
// networks and goroutines and a run stays deterministic. The split between
// the three verbs matters to the caller:
//
//   - Init seeds a Peer from a freshly captured reference channel.
//   - Measure folds one received reference observation into the Peer and
//     returns the Correction to apply; it is the only mutating verb.
//   - Predict extrapolates the Correction to a future ether tick without
//     an observation and must not mutate the Peer — the caller uses it for
//     the sync-loss fallback and the extrapolation ablation.
//   - Confidence reports how much a prediction at a given tick can be
//     trusted; a value ≤ 0 tells the caller to abstain (withhold the
//     slave's antennas) rather than fire with a garbage phase ratio.
package sync

import (
	"fmt"
	"math"

	"megamimo/internal/cmplxs"
	"megamimo/internal/ofdm"
	"megamimo/internal/units"
)

// Peer is one AP's synchronization state toward one potential lead. The
// fields are a union across strategies: the reference/CFO block is shared,
// the Kalman block belongs to AirSync and the burst block to BeamSync.
// Strategies own the state machine; callers only read Ref (to detect an
// unseeded peer) and the CFO estimate for telemetry.
type Peer struct {
	// Ref is the reference channel ĥᵢ^peer(0), one complex gain per FFT
	// bin (§5.1c). nil until Init runs.
	Ref []complex128
	// RefAt is the ether time of the reference estimate's phase-reference
	// sample: phase ratios against Ref measure the oscillator advance
	// since exactly this instant.
	RefAt int64
	// CFO is the strategy's current best estimate of ω_peer − ω_self in
	// rad/sample (§5.3: averaged for intra-packet tracking).
	CFO units.RadPerSample
	// FuseWeight is the precision weight of the CFO fusion (samples²,
	// variance ∝ 1/baseline²) used by the header scheme's long-term
	// average.
	FuseWeight float64
	// LastPhase/LastAt snapshot the latest ratio phase for cross-packet
	// CFO refinement: two phase snapshots a known (long) time apart give a
	// far more precise frequency estimate than any single header.
	LastPhase units.Radians
	LastAt    int64
	HasPhase  bool
	// SlopeRate is the long-term sampling-offset slope rate in
	// rad/bin/sample (§5.2: the per-subcarrier phase slope from sampling
	// frequency offset, averaged like the CFO). A single packet's slope
	// estimate is noisy enough to swing the correction by ~0.1 rad on
	// asymmetric fading; the averaged rate is not.
	SlopeRate   float64
	SlopeWeight float64

	// Kalman state (AirSync): phase/CFO mean and covariance of the
	// continuously tracked reference. KPhase is unwrapped — it follows the
	// accumulated oscillator advance since RefAt.
	KPhase units.Radians
	KCFO   units.RadPerSample
	// P00/P01/P11 are the symmetric 2×2 covariance entries (rad²,
	// rad²/sample, rad²/sample²).
	P00, P01, P11 float64
	KInit         bool

	// Burst state (BeamSync): the last fused calibration burst.
	BurstAt    int64
	BurstPhase units.Radians
	BurstInit  bool
}

// RefCapture is a freshly captured reference handed to Strategy.Init: the
// reference channel, its phase-reference time, the packet-wide CFO
// estimate and the baseline that estimate was formed over.
type RefCapture struct {
	// Ref is the per-bin reference channel estimate.
	Ref []complex128
	// RefAt is the ether time of Ref's phase-reference sample.
	RefAt int64
	// CFO is the capture's packet-wide carrier-offset estimate.
	CFO units.RadPerSample
	// Baseline is the effective baseline of that estimate in samples; the
	// precision weight of subsequent fusion seeds as Baseline².
	Baseline float64
}

// Correction is one slave's phase correction for one transmission: the
// per-bin ratio ĥ(t)/ĥ(0) to multiply into the precoder row, referenced
// at ether time At, plus the CFO for intra-packet extrapolation and the
// residual phase error the flight recorder's π/18 budget bounds.
type Correction struct {
	// Ratio is the per-bin unit-magnitude correction (nonzero only on
	// occupied bins).
	Ratio []complex128
	// At is the phase-reference time of Ratio.
	At int64
	// RefAt is the phase-reference time of the stored reference channel.
	RefAt int64
	// CFO extrapolates the correction within the packet (§5.3).
	CFO units.RadPerSample
	// Residual is the innovation of this measurement against the
	// strategy's prediction — the phase error the prediction missed by
	// (0 when nothing was measured or fused).
	Residual units.Radians
}

// Strategy is one synchronization scheme. Implementations are stateless
// configuration values; per-peer state lives in the Peer.
type Strategy interface {
	// Name returns the strategy's registry name (see Parse).
	Name() string
	// Init seeds a peer from a freshly captured reference.
	Init(ps *Peer, ref RefCapture)
	// Measure folds a received reference observation (per-bin channel
	// estimate cur, phase-referenced at ether time at) into the peer and
	// returns the correction to apply.
	Measure(ps *Peer, cur []complex128, at int64) (Correction, error)
	// Predict extrapolates the correction to ether time at without an
	// observation. It must not mutate the peer.
	Predict(ps *Peer, at int64) Correction
	// Confidence reports how much a prediction at ether time at can be
	// trusted given the caller's staleness budget; ≤ 0 means abstain.
	Confidence(ps *Peer, at int64, budget units.Ticks) float64
}

// Parse resolves a strategy registry name. The empty string selects the
// paper's header scheme.
func Parse(name string) (Strategy, error) {
	switch name {
	case "", "header":
		return Header(), nil
	case "airsync":
		return NewAirSync(), nil
	case "beamsync":
		return NewBeamSync(), nil
	case "beamsync-mistuned":
		return MistunedBeamSync(), nil
	}
	return nil, fmt.Errorf("sync: unknown strategy %q (header|airsync|beamsync|beamsync-mistuned)", name)
}

// Names lists the registry in presentation order.
func Names() []string {
	return []string{"header", "airsync", "beamsync", "beamsync-mistuned"}
}

// occCarriers, occCarrierSet and occBins cache the static occupied-carrier
// layout so per-packet ratio fits don't rebuild it. All three are
// read-only after init.
var occCarriers = ofdm.OccupiedCarriers()
var occCarrierSet = func() map[int]bool {
	m := make(map[int]bool, len(occCarriers))
	for _, k := range occCarriers {
		m[k] = true
	}
	return m
}()
var occBins = func() []int {
	out := make([]int, len(occCarriers))
	for i, k := range occCarriers {
		out[i] = ofdm.Bin(k)
	}
	return out
}()

// ratioComponents extracts the slave correction's parts from two channel
// snapshots. The true ratio ĥ(t)/ĥ(0) is the same pure phase on every
// subcarrier (§5.2 — the lead→slave channel is static; only the
// oscillators moved) plus a linear phase slope across subcarriers
// contributed by the sampling offset (§5.2: "any offset in the sampling
// frequency just adds to the phase error in each OFDM subcarrier").
// Fitting scalar-plus-slope instead of taking per-bin ratios averages the
// estimation noise across all 52 occupied bins and keeps faded bins from
// poisoning the correction. It returns the measured slope and the per-bin
// product vector for composeRatio.
func ratioComponents(cur, ref []complex128) (float64, []complex128) {
	bins := occBins
	q := make([]complex128, ofdm.NFFT)
	for _, b := range bins {
		q[b] = cur[b] * conj(ref[b])
	}
	// Slope across subcarriers: a coarse lag-1 estimate resolves the 2π
	// ambiguity of a much lower-noise lag-13 estimate (averaging over many
	// well-separated pairs instead of effectively differencing the band
	// edges).
	ks := occCarriers
	inBand := occCarrierSet
	var lag1 complex128
	for i := 0; i+1 < len(ks); i++ {
		if ks[i+1] != ks[i]+1 {
			continue // skip the DC gap
		}
		lag1 += q[ofdm.Bin(ks[i+1])] * conj(q[ofdm.Bin(ks[i])])
	}
	coarse := phaseOf(lag1)
	const lag = 13
	var lagAcc complex128
	for _, k := range ks {
		if !inBand[k+lag] {
			continue
		}
		lagAcc += q[ofdm.Bin(k+lag)] * conj(q[ofdm.Bin(k)])
	}
	slope := coarse
	if lagAcc != 0 {
		resid := cmplxs.WrapPhase(units.Radians(phaseOf(lagAcc) - coarse*lag))
		slope = (coarse*lag + units.Ratio(resid, 1)) / lag
	}
	return slope, q
}

// commonPhase fits the scalar phase of the product vector after removing
// the per-carrier slope (the composeRatio fit, factored out so strategies
// that track the scalar phase directly can reuse it).
func commonPhase(q []complex128, slope float64) units.Radians {
	var acc complex128
	for _, k := range occCarriers {
		acc += q[ofdm.Bin(k)] * cmplxs.Expi(units.Radians(-slope*float64(k)))
	}
	return cmplxs.Phase(acc)
}

// buildRatio expands a scalar phase plus per-carrier slope into the
// per-bin unit-magnitude correction vector.
func buildRatio(common units.Radians, slope float64) []complex128 {
	ratio := make([]complex128, ofdm.NFFT)
	for _, k := range occCarriers {
		ratio[ofdm.Bin(k)] = cmplxs.Expi(common + units.Radians(slope*float64(k)))
	}
	return ratio
}

// composeRatio builds the per-bin unit-magnitude correction from the
// product vector and a slope: the common phase is fit after removing the
// slope, then re-applied per carrier.
func composeRatio(q []complex128, slope float64) []complex128 {
	return buildRatio(commonPhase(q, slope), slope)
}

// FitRatio is the single-shot form: per-packet slope, no tracking (used
// where no long-term state exists, e.g. the client side of the §6.2
// reference-antenna trick).
func FitRatio(cur, ref []complex128) []complex128 {
	slope, q := ratioComponents(cur, ref)
	return composeRatio(q, slope)
}

// trackSlope fuses a per-packet slope measurement into the long-term
// sampling-offset rate (precision weighted by baseline, like trackCFO) and
// returns the slope to apply for this packet.
func (ps *Peer) trackSlope(meas, dt float64) float64 {
	if dt <= 0 {
		return meas
	}
	rateMeas := meas / dt
	w := dt * dt
	const weightCap = 1e11
	total := ps.SlopeWeight + w
	ps.SlopeRate = (ps.SlopeWeight*ps.SlopeRate + w*rateMeas) / total
	ps.SlopeWeight = math.Min(total, weightCap)
	return ps.SlopeRate * dt
}

// conj avoids importing math/cmplx for the hot product loops.
func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// phaseOf is the raw (unitless-input) phase read used by the slope fits.
func phaseOf(v complex128) float64 { return units.Ratio(cmplxs.Phase(v), 1) }
