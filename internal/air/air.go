// Package air is the shared wireless medium: transmit antennas post
// emissions (sample streams anchored at an "ether" time), and receive
// antennas observe the superposition of every emission after each link's
// multipath convolution, propagation delay, the transmitter/receiver
// oscillator rotation, optional sampling-frequency-offset resampling, and
// additive white Gaussian noise.
//
// The ether clock is the nominal sample rate; every impairment that makes
// distributed MIMO hard (CFO between independent oscillators, SFO, noise)
// is applied at observation time, so the same emission looks different to
// every receiver — exactly like the real channel.
package air

import (
	"fmt"

	"megamimo/internal/channel"
	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
	"megamimo/internal/radio"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Config parameterizes the medium.
type Config struct {
	// SampleRate is the nominal ether rate, Hz.
	SampleRate units.Hertz
	// NoiseVar is the per-sample complex noise variance at every receive
	// antenna (the noise floor in linear units; signal scales are relative
	// to it).
	NoiseVar float64
	// ModelSFO applies sampling-frequency-offset resampling from the
	// transmit and receive oscillators.
	ModelSFO bool
	// Seed makes the noise reproducible.
	Seed int64
}

type linkKey struct{ tx, rx int }

type emission struct {
	tx      int
	osc     *radio.Oscillator
	start   int64
	samples []complex128
}

// Air is the medium. It is not safe for concurrent use; the simulator is
// single-threaded per medium by design (time is global).
type Air struct {
	cfg       Config
	links     map[linkKey]*channel.Link
	emissions []emission
	noise     *rng.Source
	// pool recycles emission sample buffers (Transmit copies the caller's
	// waveform, so callers may reuse their buffers immediately); conv is the
	// grow-only per-observation convolution scratch.
	pool [][]complex128
	conv []complex128
}

// New returns an empty medium.
func New(cfg Config) *Air {
	if cfg.SampleRate <= 0 {
		panic("air: sample rate must be positive")
	}
	return &Air{
		cfg:   cfg,
		links: make(map[linkKey]*channel.Link),
		noise: rng.New(cfg.Seed).Split(0xA12),
	}
}

// Config returns the medium configuration.
func (a *Air) Config() Config { return a.cfg }

// SetLink installs the channel from transmit antenna tx to receive antenna
// rx. Antennas with no link are not connected (infinite path loss).
func (a *Air) SetLink(tx, rx int, l *channel.Link) {
	a.links[linkKey{tx, rx}] = l
}

// Link returns the installed link or nil.
func (a *Air) Link(tx, rx int) *channel.Link {
	return a.links[linkKey{tx, rx}]
}

// Transmit posts an emission from antenna tx starting at ether sample
// start. The oscillator provides the carrier phase trajectory; samples are
// the baseband waveform at nominal rate in the transmitter's own clock.
func (a *Air) Transmit(tx int, osc *radio.Oscillator, start int64, samples []complex128) {
	if osc == nil {
		panic("air: Transmit requires an oscillator")
	}
	if len(samples) == 0 {
		return
	}
	buf := a.emissionBuf(len(samples))
	copy(buf, samples)
	a.emissions = append(a.emissions, emission{tx: tx, osc: osc, start: start, samples: buf})
}

// emissionBuf returns a buffer of length n, reusing a pooled one when
// possible. Buffer identity never affects observed values, so pool order is
// irrelevant to determinism.
func (a *Air) emissionBuf(n int) []complex128 {
	for i := len(a.pool) - 1; i >= 0; i-- {
		if cap(a.pool[i]) >= n {
			b := a.pool[i][:n]
			a.pool[i] = a.pool[len(a.pool)-1]
			a.pool[len(a.pool)-1] = nil
			a.pool = a.pool[:len(a.pool)-1]
			return b
		}
	}
	return make([]complex128, n)
}

// Observe returns n samples of what receive antenna rx hears starting at
// ether sample start, through the receiver's own oscillator, with noise.
func (a *Air) Observe(rx int, osc *radio.Oscillator, start int64, n int) []complex128 {
	out := a.observe(rx, osc, start, n)
	for i := range out {
		out[i] += a.noise.ComplexNormal(a.cfg.NoiseVar)
	}
	return out
}

// ObserveClean is Observe without the noise term; the experiment harness
// uses it to measure interference power directly (the paper's INR metric
// compares received interference against a known noise floor).
func (a *Air) ObserveClean(rx int, osc *radio.Oscillator, start int64, n int) []complex128 {
	return a.observe(rx, osc, start, n)
}

func (a *Air) observe(rx int, osc *radio.Oscillator, start int64, n int) []complex128 {
	if osc == nil {
		panic("air: Observe requires an oscillator")
	}
	if n <= 0 {
		return nil
	}
	// Build at ether rate with a small tail so receiver SFO resampling has
	// material to interpolate into.
	tail := 2
	ether := make([]complex128, n+tail)
	for _, e := range a.emissions {
		l := a.links[linkKey{e.tx, rx}]
		if l == nil {
			continue
		}
		a.addEmission(ether, start, e, l, osc)
	}
	if a.cfg.ModelSFO {
		r := dsp.Resample(ether, 1/osc.SFORatio())
		if len(r) >= n {
			return r[:n]
		}
		out := make([]complex128, n)
		copy(out, r)
		return out
	}
	return ether[:n]
}

// addEmission accumulates one emission into the ether window [start,
// start+len(dst)).
func (a *Air) addEmission(dst []complex128, start int64, e emission, l *channel.Link, rxOsc *radio.Oscillator) {
	samples := e.samples
	if a.cfg.ModelSFO {
		samples = dsp.Resample(samples, e.osc.SFORatio())
	}
	need := len(samples) + len(l.Taps) - 1
	if cap(a.conv) < need {
		a.conv = make([]complex128, need)
	}
	conv := a.conv[:need]
	for i := range conv {
		conv[i] = 0
	}
	dsp.ConvolveInto(conv, samples, l.Taps)
	arrive := e.start + int64(l.Delay)
	lo := max64(arrive, start)
	hi := min64(arrive+int64(len(conv)), start+int64(len(dst)))
	if lo >= hi {
		return
	}
	// Carrier rotation e^{j(φ_tx(t)−φ_rx(t))}, advanced incrementally.
	dPhase := e.osc.CFORadPerSample() - rxOsc.CFORadPerSample()
	phase0 := e.osc.PhaseAt(lo) - rxOsc.PhaseAt(lo)
	rot := cmplxs.Expi(phase0)
	step := cmplxs.Expi(units.PhaseAdvance(dPhase, 1))
	for t := lo; t < hi; t++ {
		dst[t-start] += conv[t-arrive] * rot
		rot *= step
	}
}

// ClearBefore drops emissions that end before ether sample t, bounding
// memory in long simulations; their sample buffers return to the pool. The
// margin accounts for the longest link delay plus tap spread.
func (a *Air) ClearBefore(t int64) {
	const margin = 256
	kept := a.emissions[:0]
	for _, e := range a.emissions {
		if e.start+int64(len(e.samples))+margin >= t {
			kept = append(kept, e)
		} else {
			a.pool = append(a.pool, e.samples)
		}
	}
	for i := len(kept); i < len(a.emissions); i++ {
		a.emissions[i] = emission{}
	}
	a.emissions = kept
}

// Reset drops all emissions, returning their buffers to the pool.
func (a *Air) Reset() {
	for i := range a.emissions {
		a.pool = append(a.pool, a.emissions[i].samples)
		a.emissions[i] = emission{}
	}
	a.emissions = a.emissions[:0]
}

// NumEmissions reports the pending emission count (diagnostics).
func (a *Air) NumEmissions() int { return len(a.emissions) }

// String summarizes the medium.
func (a *Air) String() string {
	return fmt.Sprintf("air{rate=%.0f links=%d emissions=%d noiseVar=%.3g}",
		a.cfg.SampleRate, len(a.links), len(a.emissions), a.cfg.NoiseVar)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
