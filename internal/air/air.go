// Package air is the shared wireless medium: transmit antennas post
// emissions (sample streams anchored at an "ether" time), and receive
// antennas observe the superposition of every emission after each link's
// multipath convolution, propagation delay, the transmitter/receiver
// oscillator rotation, optional sampling-frequency-offset resampling, and
// additive white Gaussian noise.
//
// The ether clock is the nominal sample rate; every impairment that makes
// distributed MIMO hard (CFO between independent oscillators, SFO, noise)
// is applied at observation time, so the same emission looks different to
// every receiver — exactly like the real channel.
package air

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"megamimo/internal/channel"
	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
	"megamimo/internal/radio"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// workerCount bounds the goroutines observe fans emission shards across;
// 0 means "use GOMAXPROCS". Package-level because every simulated network
// owns its own Air but the machine's parallelism budget is shared.
var workerCount atomic.Int32

// SetWorkers bounds the worker pool observe shards emission summation
// across. n <= 0 restores the default (GOMAXPROCS at call time); 1 keeps
// observation strictly serial. Observed samples are byte-identical at every
// worker count: the shard partition and the reduction order depend only on
// the emission list, never on how many goroutines computed the shards.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// Workers reports the effective shard fan-out observe will use.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Config parameterizes the medium.
type Config struct {
	// SampleRate is the nominal ether rate, Hz.
	SampleRate units.Hertz
	// NoiseVar is the per-sample complex noise variance at every receive
	// antenna (the noise floor in linear units; signal scales are relative
	// to it).
	NoiseVar float64
	// ModelSFO applies sampling-frequency-offset resampling from the
	// transmit and receive oscillators.
	ModelSFO bool
	// Seed makes the noise reproducible.
	Seed int64
}

type linkKey struct{ tx, rx int }

type emission struct {
	tx      int
	osc     *radio.Oscillator
	start   int64
	samples []complex128
}

// Air is the medium. It is not safe for concurrent use; the simulator is
// single-threaded per medium by design (time is global). (observe may fan
// emission shards across a bounded worker pool internally, but that
// parallelism never escapes the call.)
type Air struct {
	cfg       Config
	links     map[linkKey]*channel.Link
	emissions []emission
	noise     *rng.Source
	// pool recycles emission sample buffers (Transmit copies the caller's
	// waveform, so callers may reuse their buffers immediately). It is
	// capped at poolCap buffers; excess returns to the GC so a burst of
	// traffic cannot pin its high-water mark forever.
	pool [][]complex128
	// unsorted marks that an out-of-order Transmit broke the by-start
	// ordering observe's time index relies on; the next observe re-sorts.
	unsorted bool
	// shardBufs slices the grow-only shardBacking block into per-shard
	// accumulation buffers.
	shardBufs    [][]complex128
	shardBacking []complex128
}

// poolCap bounds the emission-buffer pool; see Air.pool.
const poolCap = 64

// shardSize is the number of consecutive emissions each observation shard
// accumulates. The partition is a pure function of the emission list, so
// the floating-point summation tree — per-shard accumulation in emission
// order, then reduction in shard order — is fixed before any worker runs.
const shardSize = 4

// New returns an empty medium.
func New(cfg Config) *Air {
	if cfg.SampleRate <= 0 {
		panic("air: sample rate must be positive")
	}
	return &Air{
		cfg:   cfg,
		links: make(map[linkKey]*channel.Link),
		noise: rng.New(cfg.Seed).Split(0xA12),
	}
}

// Config returns the medium configuration.
func (a *Air) Config() Config { return a.cfg }

// SetLink installs the channel from transmit antenna tx to receive antenna
// rx. Antennas with no link are not connected (infinite path loss).
func (a *Air) SetLink(tx, rx int, l *channel.Link) {
	a.links[linkKey{tx, rx}] = l
}

// Link returns the installed link or nil.
func (a *Air) Link(tx, rx int) *channel.Link {
	return a.links[linkKey{tx, rx}]
}

// Transmit posts an emission from antenna tx starting at ether sample
// start. The oscillator provides the carrier phase trajectory; samples are
// the baseband waveform at nominal rate in the transmitter's own clock.
func (a *Air) Transmit(tx int, osc *radio.Oscillator, start int64, samples []complex128) {
	if osc == nil {
		panic("air: Transmit requires an oscillator")
	}
	if len(samples) == 0 {
		return
	}
	buf := a.emissionBuf(len(samples))
	copy(buf, samples)
	if k := len(a.emissions); k > 0 && start < a.emissions[k-1].start {
		a.unsorted = true
	}
	a.emissions = append(a.emissions, emission{tx: tx, osc: osc, start: start, samples: buf})
}

// emissionBuf returns a buffer of length n, reusing a pooled one when
// possible. Buffer identity never affects observed values, so pool order is
// irrelevant to determinism.
func (a *Air) emissionBuf(n int) []complex128 {
	for i := len(a.pool) - 1; i >= 0; i-- {
		if cap(a.pool[i]) >= n {
			b := a.pool[i][:n]
			a.pool[i] = a.pool[len(a.pool)-1]
			a.pool[len(a.pool)-1] = nil
			a.pool = a.pool[:len(a.pool)-1]
			return b
		}
	}
	return make([]complex128, n)
}

// Observe returns n samples of what receive antenna rx hears starting at
// ether sample start, through the receiver's own oscillator, with noise.
func (a *Air) Observe(rx int, osc *radio.Oscillator, start int64, n int) []complex128 {
	out := a.observe(rx, osc, start, n)
	for i := range out {
		out[i] += a.noise.ComplexNormal(a.cfg.NoiseVar)
	}
	return out
}

// ObserveClean is Observe without the noise term; the experiment harness
// uses it to measure interference power directly (the paper's INR metric
// compares received interference against a known noise floor).
func (a *Air) ObserveClean(rx int, osc *radio.Oscillator, start int64, n int) []complex128 {
	return a.observe(rx, osc, start, n)
}

func (a *Air) observe(rx int, osc *radio.Oscillator, start int64, n int) []complex128 {
	if osc == nil {
		panic("air: Observe requires an oscillator")
	}
	if n <= 0 {
		return nil
	}
	// Build at ether rate with a small tail so receiver SFO resampling has
	// material to interpolate into.
	tail := 2
	ether := make([]complex128, n+tail)
	if a.unsorted {
		es := a.emissions
		sort.SliceStable(es, func(i, j int) bool { return es[i].start < es[j].start })
		a.unsorted = false
	}
	// Time index: emissions are kept sorted by start, so everything from
	// the first emission starting at or beyond the window end is invisible
	// (link delays only push arrivals later). Emissions that ended before
	// the window skip per-emission on the overlap clamp, before any
	// convolution work.
	cut := sort.Search(len(a.emissions), func(i int) bool {
		return a.emissions[i].start >= start+int64(n+tail)
	})
	shards := (cut + shardSize - 1) / shardSize
	switch {
	case shards <= 1:
		a.fillShard(ether, start, rx, osc, 0, cut)
	default:
		// Deterministic sharded summation: shard s accumulates emissions
		// [s·shardSize, (s+1)·shardSize) in index order into its own
		// buffer, and the buffers reduce in shard order. Workers only
		// decide who computes a shard, never what is summed in which
		// order, so one worker and sixteen produce identical bytes.
		bufs := a.shardBuffers(shards, n+tail)
		if w := min(Workers(), shards); w <= 1 {
			for s := 0; s < shards; s++ {
				a.fillShard(bufs[s], start, rx, osc, s*shardSize, min(cut, (s+1)*shardSize))
			}
		} else {
			var next atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						s := int(next.Add(1) - 1)
						if s >= shards {
							return
						}
						a.fillShard(bufs[s], start, rx, osc, s*shardSize, min(cut, (s+1)*shardSize))
					}
				}()
			}
			wg.Wait()
		}
		for s := 0; s < shards; s++ {
			b := bufs[s]
			for i := range ether {
				ether[i] += b[i]
			}
		}
	}
	if a.cfg.ModelSFO {
		r := dsp.Resample(ether, 1/osc.SFORatio())
		if len(r) >= n {
			return r[:n]
		}
		out := make([]complex128, n)
		copy(out, r)
		return out
	}
	return ether[:n]
}

// fillShard accumulates emissions [lo, hi) into dst in index order. dst is
// either the ether buffer itself (single-shard observations) or one shard's
// private buffer; shard workers touch disjoint buffers only.
func (a *Air) fillShard(dst []complex128, start int64, rx int, osc *radio.Oscillator, lo, hi int) {
	for i := lo; i < hi; i++ {
		e := a.emissions[i]
		l := a.links[linkKey{e.tx, rx}]
		if l == nil {
			continue
		}
		a.addEmission(dst, start, e, l, osc)
	}
}

// shardBuffers returns count zeroed buffers of length n, sliced out of one
// grow-only backing block (disjoint regions, so shard workers never share
// a buffer).
func (a *Air) shardBuffers(count, n int) [][]complex128 {
	if cap(a.shardBacking) < count*n {
		a.shardBacking = make([]complex128, count*n)
	}
	backing := a.shardBacking[:count*n]
	for i := range backing {
		backing[i] = 0
	}
	for len(a.shardBufs) < count {
		a.shardBufs = append(a.shardBufs, nil)
	}
	bufs := a.shardBufs[:count]
	for s := range bufs {
		bufs[s] = backing[s*n : (s+1)*n : (s+1)*n]
	}
	return bufs
}

// addEmission accumulates one emission into the ether window [start,
// start+len(dst)). The convolution window is clamped to the overlap first,
// so a non-overlapping emission costs a few comparisons and an emission
// mostly outside the window only convolves the samples the receiver hears;
// convolution, carrier rotation and summation run fused in one pass.
func (a *Air) addEmission(dst []complex128, start int64, e emission, l *channel.Link, rxOsc *radio.Oscillator) {
	samples := e.samples
	if a.cfg.ModelSFO {
		samples = dsp.Resample(samples, e.osc.SFORatio())
	}
	need := len(samples) + len(l.Taps) - 1
	arrive := e.start + int64(l.Delay)
	lo := max64(arrive, start)
	hi := min64(arrive+int64(need), start+int64(len(dst)))
	if lo >= hi {
		return
	}
	// Carrier rotation e^{j(φ_tx(t)−φ_rx(t))}, advanced incrementally.
	dPhase := e.osc.CFORadPerSample() - rxOsc.CFORadPerSample()
	phase0 := e.osc.PhaseAt(lo) - rxOsc.PhaseAt(lo)
	rot := cmplxs.Expi(phase0)
	step := cmplxs.Expi(units.PhaseAdvance(dPhase, 1))
	dsp.ConvolveRotateAdd(dst[lo-start:hi-start], samples, l.Taps, int(lo-arrive), rot, step)
}

// ClearBefore drops emissions that end before ether sample t, bounding
// memory in long simulations; their sample buffers return to the pool. The
// margin accounts for the longest link delay plus tap spread.
func (a *Air) ClearBefore(t int64) {
	const margin = 256
	kept := a.emissions[:0]
	for _, e := range a.emissions {
		if e.start+int64(len(e.samples))+margin >= t {
			kept = append(kept, e)
		} else {
			a.recycle(e.samples)
		}
	}
	for i := len(kept); i < len(a.emissions); i++ {
		a.emissions[i] = emission{}
	}
	a.emissions = kept
}

// Reset drops all emissions, returning their buffers to the pool.
func (a *Air) Reset() {
	for i := range a.emissions {
		a.recycle(a.emissions[i].samples)
		a.emissions[i] = emission{}
	}
	a.emissions = a.emissions[:0]
	a.unsorted = false
}

// recycle returns an emission buffer to the pool, trimming at poolCap:
// beyond the cap the buffer is dropped for the GC, so the pool's footprint
// is bounded by poolCap × the largest frame instead of the busiest burst
// the medium ever carried.
func (a *Air) recycle(buf []complex128) {
	if len(a.pool) >= poolCap {
		return
	}
	a.pool = append(a.pool, buf)
}

// PoolSize reports the pooled emission-buffer count (tests, diagnostics).
func (a *Air) PoolSize() int { return len(a.pool) }

// NumEmissions reports the pending emission count (diagnostics).
func (a *Air) NumEmissions() int { return len(a.emissions) }

// String summarizes the medium.
func (a *Air) String() string {
	return fmt.Sprintf("air{rate=%.0f links=%d emissions=%d noiseVar=%.3g}",
		a.cfg.SampleRate, len(a.links), len(a.emissions), a.cfg.NoiseVar)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
