package air

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"megamimo/internal/channel"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Property: the medium is linear — observing two emissions together equals
// the sum of observing each alone.
func TestQuickSuperpositionLinearity(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		mk := func() *Air {
			a := New(Config{SampleRate: 10e6, NoiseVar: 0, Seed: 1})
			a.SetLink(0, 9, channel.NewLink(rng.New(seed).Split(1), channel.DefaultIndoor, 1, 0))
			a.SetLink(1, 9, channel.NewLink(rng.New(seed).Split(2), channel.DefaultIndoor, 1, 1))
			return a
		}
		o0 := testOsc(units.PPM(src.Uniform(-2, 2)))
		o1 := testOsc(units.PPM(src.Uniform(-2, 2)))
		or := testOsc(units.PPM(src.Uniform(-2, 2)))
		x0 := src.ComplexNormalVec(make([]complex128, 200), 1)
		x1 := src.ComplexNormalVec(make([]complex128, 150), 1)

		both := mk()
		both.Transmit(0, o0, 0, x0)
		both.Transmit(1, o1, 37, x1)
		yBoth := both.ObserveClean(9, or, 0, 300)

		only0 := mk()
		only0.Transmit(0, o0, 0, x0)
		y0 := only0.ObserveClean(9, or, 0, 300)

		only1 := mk()
		only1.Transmit(1, o1, 37, x1)
		y1 := only1.ObserveClean(9, or, 0, 300)

		for i := range yBoth {
			if cmplx.Abs(yBoth[i]-(y0[i]+y1[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling the transmitted samples scales the observation.
func TestQuickObservationHomogeneity(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		x := src.ComplexNormalVec(make([]complex128, 120), 1)
		scaled := make([]complex128, len(x))
		k := complex(src.Uniform(0.1, 3), src.Uniform(-1, 1))
		for i := range x {
			scaled[i] = k * x[i]
		}
		osc := testOsc(units.PPM(src.Uniform(-2, 2)))
		or := testOsc(units.PPM(src.Uniform(-2, 2)))

		a := New(Config{SampleRate: 10e6, NoiseVar: 0, Seed: 1})
		a.SetLink(0, 9, channel.NewLink(rng.New(seed).Split(7), channel.DefaultIndoor, 1, 0))
		a.Transmit(0, osc, 5, x)
		y := a.ObserveClean(9, or, 0, 160)

		b := New(Config{SampleRate: 10e6, NoiseVar: 0, Seed: 1})
		b.SetLink(0, 9, channel.NewLink(rng.New(seed).Split(7), channel.DefaultIndoor, 1, 0))
		b.Transmit(0, osc, 5, scaled)
		ys := b.ObserveClean(9, or, 0, 160)

		for i := range y {
			if cmplx.Abs(ys[i]-k*y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
