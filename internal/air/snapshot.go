package air

import (
	"fmt"

	"megamimo/internal/radio"
	"megamimo/internal/rng"
)

// EmissionState is one in-flight emission in serializable form. The
// oscillator is referenced by transmit antenna ID and resolved on restore:
// oscillators are owned by the network's nodes and checkpointed there.
type EmissionState struct {
	Tx      int
	Start   int64
	Samples []complex128
}

// State is the mutable state of the medium: the noise stream position and
// the emissions still audible. Links are static channel realizations
// rebuilt from the seed; the buffer pool and shard scratch are
// capacity-only and never affect observed values. The checkpoint layer
// owns the wire encoding (complex samples are not JSON-native).
type State struct {
	Noise     rng.State
	Emissions []EmissionState
}

// Snapshot captures the medium's mutable state. Emission samples are
// copied, so the caller may keep using the medium.
func (a *Air) Snapshot() State {
	st := State{
		Noise:     a.noise.State(),
		Emissions: make([]EmissionState, len(a.emissions)),
	}
	for i, e := range a.emissions {
		st.Emissions[i] = EmissionState{
			Tx:      e.tx,
			Start:   e.start,
			Samples: append([]complex128(nil), e.samples...),
		}
	}
	return st
}

// RestoreSnapshot overwrites the medium's mutable state. oscFor maps a
// transmit antenna ID back to its owning oscillator (the network knows the
// antenna plan; the medium does not).
func (a *Air) RestoreSnapshot(st State, oscFor func(tx int) *radio.Oscillator) error {
	if err := a.noise.Restore(st.Noise); err != nil {
		return fmt.Errorf("air: noise rng: %w", err)
	}
	a.Reset()
	for i, e := range st.Emissions {
		osc := oscFor(e.Tx)
		if osc == nil {
			return fmt.Errorf("air: emission %d: no oscillator for transmit antenna %d", i, e.Tx)
		}
		if len(e.Samples) == 0 {
			return fmt.Errorf("air: emission %d: empty sample buffer", i)
		}
		a.Transmit(e.Tx, osc, e.Start, e.Samples)
	}
	return nil
}
