package air

import (
	"math"
	"math/cmplx"
	"testing"

	"megamimo/internal/channel"
	"megamimo/internal/cmplxs"
	"megamimo/internal/radio"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func testOsc(ppm units.PPM) *radio.Oscillator {
	return &radio.Oscillator{PPM: ppm, CarrierHz: 2.4e9, SampleRate: 10e6}
}

func flatLink(gain complex128) *channel.Link {
	return &channel.Link{Taps: []complex128{gain}}
}

func newTestAir(noiseVar float64) *Air {
	return New(Config{SampleRate: 10e6, NoiseVar: noiseVar, Seed: 1})
}

func ramp(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(float64(i+1), 0)
	}
	return out
}

func TestFlatLinkPassthrough(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 1, flatLink(0.5))
	osc := testOsc(0)
	x := ramp(100)
	a.Transmit(0, osc, 0, x)
	y := a.ObserveClean(1, testOsc(0), 0, 100)
	for i := range x {
		if cmplx.Abs(y[i]-0.5*x[i]) > 1e-9 {
			t.Fatalf("sample %d: %v != %v", i, y[i], 0.5*x[i])
		}
	}
}

func TestNoLinkMeansSilence(t *testing.T) {
	a := newTestAir(0)
	a.Transmit(0, testOsc(0), 0, ramp(50))
	y := a.ObserveClean(1, testOsc(0), 0, 50)
	for _, v := range y {
		if v != 0 {
			t.Fatal("unconnected antennas leaked signal")
		}
	}
}

func TestDelayShiftsArrival(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 1, &channel.Link{Taps: []complex128{1}, Delay: 7})
	a.Transmit(0, testOsc(0), 10, ramp(20))
	y := a.ObserveClean(1, testOsc(0), 0, 40)
	for i := 0; i < 17; i++ {
		if y[i] != 0 {
			t.Fatalf("energy before arrival at %d", i)
		}
	}
	if cmplx.Abs(y[17]-1) > 1e-12 {
		t.Fatalf("first sample %v at 17", y[17])
	}
}

func TestObserveWindowing(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 1, flatLink(1))
	a.Transmit(0, testOsc(0), 100, ramp(50))
	// Window starting mid-emission.
	y := a.ObserveClean(1, testOsc(0), 120, 10)
	for i := range y {
		want := complex(float64(20+i+1), 0)
		if cmplx.Abs(y[i]-want) > 1e-9 {
			t.Fatalf("windowed sample %d = %v, want %v", i, y[i], want)
		}
	}
}

func TestMultipathConvolution(t *testing.T) {
	a := newTestAir(0)
	taps := []complex128{1, 0.5i}
	a.SetLink(0, 1, &channel.Link{Taps: taps})
	x := []complex128{1, 2}
	a.Transmit(0, testOsc(0), 0, x)
	y := a.ObserveClean(1, testOsc(0), 0, 3)
	want := []complex128{1, 2 + 0.5i, 1i}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("conv sample %d = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestTwoTransmittersSuperpose(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 2, flatLink(1))
	a.SetLink(1, 2, flatLink(1))
	osc := testOsc(0)
	a.Transmit(0, osc, 0, []complex128{1, 1, 1})
	a.Transmit(1, osc, 1, []complex128{2i, 2i})
	y := a.ObserveClean(2, testOsc(0), 0, 4)
	want := []complex128{1, 1 + 2i, 1 + 2i, 0}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("superposition sample %d = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestCFORotatesReceivedSignal(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 1, flatLink(1))
	tx := testOsc(2) // +2 ppm of 2.4 GHz = 4.8 kHz
	rx := testOsc(0)
	n := 1000
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	a.Transmit(0, tx, 0, x)
	y := a.ObserveClean(1, rx, 0, n)
	w := tx.CFORadPerSample()
	for _, i := range []int{0, 100, 999} {
		want := cmplxs.Expi(units.PhaseAdvance(w, units.Samples(i)))
		if cmplx.Abs(y[i]-want) > 1e-6 {
			t.Fatalf("CFO rotation at %d: %v, want %v", i, y[i], want)
		}
	}
}

func TestRelativeCFOIsDifferenceOfOffsets(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 1, flatLink(1))
	tx, rx := testOsc(3), testOsc(3) // identical ppm ⇒ no relative rotation
	n := 2000
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	a.Transmit(0, tx, 0, x)
	y := a.ObserveClean(1, rx, 0, n)
	if cmplxs.PhaseDiff(y[n-1], y[0]) > 1e-9 {
		t.Fatal("matched oscillators still rotated")
	}
}

func TestPhaseContinuityAcrossObservations(t *testing.T) {
	// Observing the same emission in two windows must be phase-consistent
	// (slaves measure the lead's phase at different times — continuity is
	// what makes that meaningful).
	a := newTestAir(0)
	a.SetLink(0, 1, flatLink(1))
	tx, rx := testOsc(1.5), testOsc(-0.5)
	n := 4000
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	a.Transmit(0, tx, 0, x)
	full := a.ObserveClean(1, rx, 0, n)
	part1 := a.ObserveClean(1, rx, 0, n/2)
	part2 := a.ObserveClean(1, rx, int64(n/2), n/2)
	for i := 0; i < n/2; i++ {
		if cmplx.Abs(part1[i]-full[i]) > 1e-9 || cmplx.Abs(part2[i]-full[n/2+i]) > 1e-9 {
			t.Fatalf("windowed observation diverges at %d", i)
		}
	}
}

func TestNoiseStatistics(t *testing.T) {
	a := newTestAir(0.04)
	y := a.Observe(1, testOsc(0), 0, 100000)
	var p float64
	for _, v := range y {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(y))
	if math.Abs(p-0.04) > 0.003 {
		t.Fatalf("noise power %v, want 0.04", p)
	}
}

func TestObserveCleanIsNoiseless(t *testing.T) {
	a := newTestAir(1)
	y := a.ObserveClean(1, testOsc(0), 0, 100)
	for _, v := range y {
		if v != 0 {
			t.Fatal("ObserveClean added noise")
		}
	}
}

func TestSFOStretchesWaveform(t *testing.T) {
	cfg := Config{SampleRate: 10e6, NoiseVar: 0, ModelSFO: true, Seed: 1}
	a := New(cfg)
	a.SetLink(0, 1, flatLink(1))
	// 100 ppm fast TX clock: emission plays ~1 ether sample longer per 10k.
	tx := testOsc(0)
	tx.PPM = 100
	n := 20000
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	a.Transmit(0, tx, 0, x)
	y := a.ObserveClean(1, testOsc(0), 0, n+5)
	// Count nonzero span.
	span := 0
	for _, v := range y {
		if cmplx.Abs(v) > 0.5 {
			span++
		}
	}
	if span <= n {
		t.Fatalf("fast TX clock did not stretch emission: span %d", span)
	}
}

func TestClearBeforeDropsOldEmissions(t *testing.T) {
	a := newTestAir(0)
	a.SetLink(0, 1, flatLink(1))
	a.Transmit(0, testOsc(0), 0, ramp(10))
	a.Transmit(0, testOsc(0), 100000, ramp(10))
	if a.NumEmissions() != 2 {
		t.Fatal("setup")
	}
	a.ClearBefore(50000)
	if a.NumEmissions() != 1 {
		t.Fatalf("%d emissions after ClearBefore", a.NumEmissions())
	}
	a.Reset()
	if a.NumEmissions() != 0 {
		t.Fatal("Reset left emissions")
	}
}

func TestTransmitValidation(t *testing.T) {
	a := newTestAir(0)
	defer func() {
		if recover() == nil {
			t.Fatal("nil oscillator accepted")
		}
	}()
	a.Transmit(0, nil, 0, ramp(1))
}

func TestRayleighLinkEndToEndSNR(t *testing.T) {
	// End-to-end budget: unit-power signal through a link with power gain
	// g over noise var nv should observe SNR ≈ g/nv.
	src := rng.New(5)
	gain := 0.01 // −20 dB link
	nv := 1e-4   // ⇒ 20 dB SNR
	a := New(Config{SampleRate: 10e6, NoiseVar: nv, Seed: 2})
	l := channel.NewLink(src, channel.Params{NTaps: 1, DecaySamples: 1}, gain, 0)
	a.SetLink(0, 1, l)
	n := 50000
	x := src.ComplexNormalVec(make([]complex128, n), 1)
	a.Transmit(0, testOsc(1), 0, x)
	y := a.Observe(1, testOsc(-1), 0, n)
	var p float64
	for _, v := range y {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(n)
	wantP := l.PowerGain() + nv
	if math.Abs(p-wantP)/wantP > 0.05 {
		t.Fatalf("received power %v, want %v", p, wantP)
	}
}

func BenchmarkObserveJointTransmission(b *testing.B) {
	src := rng.New(1)
	a := New(Config{SampleRate: 10e6, NoiseVar: 1e-4, Seed: 3})
	nAPs := 10
	oscs := make([]*radio.Oscillator, nAPs)
	x := src.ComplexNormalVec(make([]complex128, 4000), 1)
	for i := 0; i < nAPs; i++ {
		oscs[i] = testOsc(units.PPM(i) - 5)
		a.SetLink(i, 100, channel.NewLink(src.Split(uint64(i)), channel.DefaultIndoor, 0.01, 0))
		a.Transmit(i, oscs[i], 0, x)
	}
	rx := testOsc(0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(100, rx, 0, 4100)
	}
}

func TestEmissionPoolCapTrim(t *testing.T) {
	a := newTestAir(0)
	osc := testOsc(0)
	// One burst far beyond the pool cap; Reset recycles what fits and drops
	// the rest, so a single busy round cannot pin its high-water mark.
	for i := 0; i < 3*poolCap; i++ {
		a.Transmit(0, osc, int64(i*10), ramp(32))
	}
	a.Reset()
	if got := a.PoolSize(); got != poolCap {
		t.Fatalf("pool holds %d buffers after burst reset, want cap %d", got, poolCap)
	}
	// Recycling into a full pool stays capped.
	a.Transmit(0, osc, 0, ramp(32))
	a.Reset()
	if got := a.PoolSize(); got != poolCap {
		t.Fatalf("pool grew past cap: %d > %d", a.PoolSize(), poolCap)
	}
	// ClearBefore trims through the same path.
	for i := 0; i < 2*poolCap; i++ {
		a.Transmit(0, osc, int64(i*10), ramp(32))
	}
	a.ClearBefore(1 << 40)
	if got := a.PoolSize(); got != poolCap {
		t.Fatalf("pool holds %d buffers after ClearBefore, want cap %d", got, poolCap)
	}
}

func TestShardedObservationWorkerInvariance(t *testing.T) {
	defer SetWorkers(0)
	build := func() *Air {
		a := newTestAir(0)
		r := rng.New(42)
		for tx := 0; tx < 6; tx++ {
			a.SetLink(tx, 99, &channel.Link{
				Taps:  []complex128{complex(r.Uniform(0.2, 1), r.Uniform(-0.5, 0.5)), complex(r.Uniform(-0.3, 0.3), 0), 0, complex(r.Uniform(-0.1, 0.1), 0)},
				Delay: tx * 3,
			})
		}
		// Enough emissions to span many shards, deliberately posted out of
		// start order to exercise the re-sort.
		for i := 0; i < 10*shardSize; i++ {
			tx := i % 6
			start := int64(((i * 37) % 40) * 25)
			a.Transmit(tx, testOsc(units.PPM(float64(tx)-2.5)), start, ramp(64))
		}
		return a
	}
	SetWorkers(1)
	serial := build().ObserveClean(99, testOsc(1.5), 0, 1200)
	for _, w := range []int{2, 4, 16} {
		SetWorkers(w)
		got := build().ObserveClean(99, testOsc(1.5), 0, 1200)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: sample %d differs from serial: %v != %v", w, i, got[i], serial[i])
			}
		}
	}
}
