package megamimo_test

import (
	"fmt"

	"megamimo"
)

// ExampleNetwork_JointTransmit shows the core capability: two APs deliver
// two different packets at the same time on the same channel.
func ExampleNetwork_JointTransmit() {
	cfg := megamimo.DefaultConfig(2, 2, 18, 24)
	cfg.Seed = 42
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := net.MeasureAndPrecode(); err != nil {
		panic(err)
	}
	res, err := net.JointTransmit([][]byte{
		make([]byte, 400),
		make([]byte, 400),
	}, megamimo.MCS2)
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered:", res.OK[0] && res.OK[1])
	// Output: delivered: true
}

// ExampleComputeDiversity shows §8's coherent combining: the per-bin
// diversity weights have unit magnitude on every AP antenna.
func ExampleComputeDiversity() {
	cfg := megamimo.DefaultConfig(4, 1, 10, 12)
	cfg.Seed = 7
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	if err := net.Measure(); err != nil {
		panic(err)
	}
	p, err := megamimo.ComputeDiversity(net.Msmt, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("streams:", p.Streams, "tx antennas:", p.TxAnts)
	// Output: streams: 1 tx antennas: 4
}

// ExampleRunFig6 regenerates the paper's misalignment microbenchmark.
func ExampleRunFig6() {
	r := megamimo.RunFig6(50, 1)
	// The paper's anchor: ~8 dB loss at 0.35 rad, 20 dB SNR.
	for _, p := range r.Points {
		if p.SNRdB == 20 && p.MisalignmentRad > 0.34 && p.MisalignmentRad < 0.36 {
			fmt.Println("loss at 0.35 rad is large:", p.ReductionDB > 5)
		}
	}
	// Output: loss at 0.35 rad is large: true
}
