// Package megamimo's benchmark harness regenerates every figure of the
// paper's evaluation (§11) as a testing.B benchmark, reporting the
// figure's headline quantity as a custom metric. Run with
//
//	go test -bench=. -benchmem
//
// Larger, slower sweeps (the full 20-topology methodology) live in
// cmd/megamimo-bench.
package megamimo

import (
	"math"
	"megamimo/internal/units"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/experiment"
	"megamimo/internal/phy"
	"megamimo/internal/stats"
)

// BenchmarkFig6Misalignment regenerates the SNR-reduction-vs-misalignment
// curves and reports the paper's anchor point (0.35 rad at 20 dB ≈ 8 dB).
func BenchmarkFig6Misalignment(b *testing.B) {
	b.ReportAllocs()
	var anchor float64
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig6(100, int64(i)+1)
		for _, p := range r.Points {
			if math.Abs(p.MisalignmentRad-0.35) < 0.026 && p.SNRdB == 20 {
				anchor = p.ReductionDB
			}
		}
	}
	b.ReportMetric(anchor, "dB-loss@0.35rad,20dB")
}

// BenchmarkFig7PhaseSync measures the distributed phase-sync misalignment
// distribution (paper: median 0.017 rad, p95 0.05 rad).
func BenchmarkFig7PhaseSync(b *testing.B) {
	b.ReportAllocs()
	var median, p95 float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig7(2, 20, int64(i)+3)
		if err != nil {
			b.Fatal(err)
		}
		median, p95 = r.MedianRad, r.P95Rad
	}
	b.ReportMetric(median, "median-rad")
	b.ReportMetric(p95, "p95-rad")
}

// BenchmarkFig8INR measures the interference-to-noise ratio at a nulled
// client (paper: ≤1.5 dB at 10 pairs, ≈0.13 dB growth per pair).
func BenchmarkFig8INR(b *testing.B) {
	b.ReportAllocs()
	var inr10, slope float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig8(6, 1, int64(i)+5)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Bin == experiment.HighSNR.Name && p.Receivers == 6 {
				inr10 = units.Ratio(p.INRdB, 1)
			}
		}
		slope = r.SlopePerPair(experiment.HighSNR.Name)
	}
	b.ReportMetric(inr10, "INR-dB@6")
	b.ReportMetric(slope, "dB-per-pair")
}

// BenchmarkFig9Scaling measures total-throughput scaling (paper: linear,
// 8.1–9.4× at 10 APs).
func BenchmarkFig9Scaling(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig9([]int{2, 6}, 2, 2, int64(i)+7)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Bin == experiment.HighSNR.Name && p.APs == 6 {
				gain = p.MegaMIMObps / p.Dot11bps
			}
		}
	}
	b.ReportMetric(gain, "gain-x@6APs")
}

// BenchmarkFig10Fairness measures the spread of per-client gains (paper:
// all clients see roughly the same gain).
func BenchmarkFig10Fairness(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig9([]int{4}, 2, 2, int64(i)+11)
		if err != nil {
			b.Fatal(err)
		}
		f10 := experiment.Fig10From(r)
		g := f10.Gains[experiment.HighSNR.Name][4]
		if len(g) > 1 {
			spread = stats.Percentile(g, 90) - stats.Percentile(g, 10)
		}
	}
	b.ReportMetric(spread, "gain-p90-p10")
}

// BenchmarkFig11Diversity measures coherent-combining throughput at a 0 dB
// client (paper: ≈21 Mb/s with 10 APs where 802.11 delivers nothing).
func BenchmarkFig11Diversity(b *testing.B) {
	b.ReportAllocs()
	var at0 float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig11([]int{8}, 1, int64(i)+13)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.LinkSNRdB == 0 {
				at0 = p.MegaMIMO / 1e6
			}
		}
	}
	b.ReportMetric(at0, "Mbps@0dB-8APs")
}

// BenchmarkFig12Dot11n measures the off-the-shelf 802.11n gain (paper:
// 1.67–1.83× mean).
func BenchmarkFig12Dot11n(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig12(2, 2, int64(i)+17)
		if err != nil {
			b.Fatal(err)
		}
		var acc float64
		for _, p := range r.Points {
			acc += p.MeanGain
		}
		gain = acc / float64(len(r.Points))
	}
	b.ReportMetric(gain, "gain-x")
}

// BenchmarkFig13Dot11nFairness measures the 802.11n gain CDF median
// (paper: 1.8×).
func BenchmarkFig13Dot11nFairness(b *testing.B) {
	b.ReportAllocs()
	var median float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig12(3, 2, int64(i)+19)
		if err != nil {
			b.Fatal(err)
		}
		f13 := experiment.Fig13From(r)
		if len(f13.Gains) > 0 {
			median = stats.Median(f13.Gains)
		}
	}
	b.ReportMetric(median, "median-gain-x")
}

// BenchmarkAblationPredictVsMeasure contrasts the paper's direct
// per-packet phase measurement against frequency-offset extrapolation
// (§1's motivating example): the INR at a nulled client after ~50 ms of
// extrapolation versus with the real protocol.
func BenchmarkAblationPredictVsMeasure(b *testing.B) {
	b.ReportAllocs()
	run := func(extrapolate bool, seed int64) float64 {
		cfg := core.DefaultConfig(3, 3, 18, 24)
		cfg.Seed = seed
		cfg.WellConditioned = true
		cfg.ExtrapolatePhase = extrapolate
		n, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Measure(); err != nil {
			b.Fatal(err)
		}
		p, err := core.ComputeZF(n.Msmt, cfg.NoiseVar)
		if err != nil {
			b.Fatal(err)
		}
		n.SetPrecoder(p)
		// Let 50 ms pass (500k samples at 10 MHz) before transmitting —
		// well inside the channel coherence time, far beyond what offset
		// extrapolation tolerates.
		n.AdvanceTime(500000)
		inr, err := n.NullingINR(0, 700, phy.MCS0)
		if err != nil {
			b.Fatal(err)
		}
		return 10 * math.Log10(inr)
	}
	var measured, extrapolated float64
	for i := 0; i < b.N; i++ {
		measured = run(false, int64(i)+23)
		extrapolated = run(true, int64(i)+23)
	}
	b.ReportMetric(measured, "INR-dB-measured")
	b.ReportMetric(extrapolated, "INR-dB-extrapolated")
}

// BenchmarkAblationZFRegularization contrasts pure zero-forcing with the
// MMSE-regularized inverse on the simulated channel ensemble (DESIGN.md
// §4: the regularizer recovers the conditioning the paper's physical
// channels had).
func BenchmarkAblationZFRegularization(b *testing.B) {
	b.ReportAllocs()
	run := func(lambda float64, seed int64) float64 {
		cfg := core.DefaultConfig(6, 6, 18, 24)
		cfg.Seed = seed
		n, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Measure(); err != nil {
			b.Fatal(err)
		}
		p, err := core.ComputeZF(n.Msmt, lambda)
		if err != nil {
			return 0
		}
		n.SetPrecoder(p)
		mcs, ok, err := n.ProbeAndSelectRate(256)
		if err != nil || !ok {
			return 0
		}
		payloads := make([][]byte, 6)
		for j := range payloads {
			payloads[j] = make([]byte, 1500)
		}
		res, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			b.Fatal(err)
		}
		return res.GoodputBits() / units.Duration(units.Ticks(res.AirtimeSamples), cfg.SampleRate) / 1e6
	}
	var pure, mmse float64
	for i := 0; i < b.N; i++ {
		pure = run(0, int64(i)+29)
		mmse = run(1e-3*6, int64(i)+29)
	}
	b.ReportMetric(pure, "Mbps-pureZF")
	b.ReportMetric(mmse, "Mbps-MMSE")
}

// BenchmarkAblationMeasurementRounds contrasts 2 vs 8 interleaved
// measurement rounds (§5.1's noise averaging) via the nulling INR.
func BenchmarkAblationMeasurementRounds(b *testing.B) {
	b.ReportAllocs()
	run := func(rounds int, seed int64) float64 {
		cfg := core.DefaultConfig(4, 4, 18, 24)
		cfg.Seed = seed
		cfg.WellConditioned = true
		cfg.MeasurementRounds = rounds
		n, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Measure(); err != nil {
			b.Fatal(err)
		}
		p, err := core.ComputeZF(n.Msmt, cfg.NoiseVar)
		if err != nil {
			b.Fatal(err)
		}
		n.SetPrecoder(p)
		inr, err := n.NullingINR(0, 700, phy.MCS0)
		if err != nil {
			b.Fatal(err)
		}
		return 10 * math.Log10(inr)
	}
	var r2, r8 float64
	for i := 0; i < b.N; i++ {
		r2 = run(2, int64(i)+31)
		r8 = run(8, int64(i)+31)
	}
	b.ReportMetric(r2, "INR-dB-2rounds")
	b.ReportMetric(r8, "INR-dB-8rounds")
}

// BenchmarkJointTransmit4x4 is a plain performance benchmark of the whole
// signal path (measurement excluded): four streams, 1500-byte frames.
func BenchmarkJointTransmit4x4(b *testing.B) {
	cfg := core.DefaultConfig(4, 4, 18, 24)
	cfg.WellConditioned = true
	n, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		b.Fatal(err)
	}
	p, err := core.ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		b.Fatal(err)
	}
	n.SetPrecoder(p)
	payloads := make([][]byte, 4)
	for j := range payloads {
		payloads[j] = make([]byte, 1500)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.JointTransmit(payloads, phy.MCS2); err != nil {
			b.Fatal(err)
		}
	}
}

// TestJointTransmitAllocBudget is the allocation regression gate for the
// zero-alloc signal path. Before the scratch-arena refactor a 4x4 joint
// transmission cost 253,951 allocations; the arena path costs ~1,500. The
// budget is set loosely above today's number so incidental churn passes,
// while still proving a >60x reduction (the acceptance bar was 5x) — a
// regression back to per-symbol buffer churn trips it immediately.
func TestJointTransmitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	cfg := core.DefaultConfig(4, 4, 18, 24)
	cfg.WellConditioned = true
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := core.ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	payloads := make([][]byte, 4)
	for j := range payloads {
		payloads[j] = make([]byte, 1500)
	}
	// Warm the grow-only scratch so the measurement sees steady state.
	for i := 0; i < 3; i++ {
		if _, err := n.JointTransmit(payloads, phy.MCS2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := n.JointTransmit(payloads, phy.MCS2); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 4000
	if allocs > budget {
		t.Errorf("JointTransmit allocates %.0f objects per 4x4 transmission, budget is %d; "+
			"a hot-path buffer is being reallocated per symbol or per frame", allocs, budget)
	}
}
