package megamimo_test

import (
	"testing"

	"megamimo"
	"megamimo/internal/channel"
	"megamimo/internal/mac"
	"megamimo/internal/phy"
)

// TestFullStackLifecycle drives one network through everything at once:
// decoupled measurement of a late-joining client, wireless CSI feedback,
// CSI quantization, joint transmission with MAC scheduling and lead
// handover, channel aging, diversity rescue, and re-measurement.
func TestFullStackLifecycle(t *testing.T) {
	cfg := megamimo.DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 202
	cfg.WellConditioned = true
	cfg.WirelessFeedback = true
	cfg.CSIQuantBits = 8
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: measure clients {0,1} first; client 2 joins 20 ms later
	// (§7 decoupled measurement), with the CSI riding the real uplink.
	if err := net.MeasureDecoupled([][]int{{0, 1}, {2}}, 200000); err != nil {
		t.Fatal(err)
	}
	p, err := megamimo.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	net.SetPrecoder(p)

	// Phase 2: drain a queue through the MAC with per-packet lead
	// nomination and async ACKs.
	sched := mac.NewScheduler(net, 3)
	sched.FillQueue(4, 600, 5)
	st, err := sched.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeliveredPackets < 9 { // 12 queued; allow a few retries to fail
		t.Fatalf("MAC delivered only %d/12", st.DeliveredPackets)
	}
	if st.ThroughputBps(cfg.SampleRate) < 10e6 {
		t.Fatalf("throughput %.1f Mb/s implausibly low", st.ThroughputBps(cfg.SampleRate)/1e6)
	}

	// Phase 3: client 1 walks away (heavy aging), the system re-measures
	// and re-adapts, and every client flows again.
	net.EvolveClientLinks(1, channel.CoherenceRho(0.5, 0.25))
	if err := net.Measure(); err != nil {
		t.Fatal(err)
	}
	p2, err := megamimo.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	net.SetPrecoder(p2)
	mcs, ok, err := net.ProbeAndSelectRate(300)
	if err != nil || !ok {
		t.Fatalf("re-adaptation: %v %v", ok, err)
	}
	res, err := net.JointTransmit([][]byte{make([]byte, 600), make([]byte, 600), make([]byte, 600)}, mcs)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, okj := range res.OK {
		if okj {
			delivered++
		}
	}
	if delivered < 2 {
		t.Fatalf("post-aging recovery delivered %d/3", delivered)
	}

	// Phase 4: diversity mode still reaches a single client afterward.
	dres, err := net.DiversityTransmit(0, make([]byte, 600), phy.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.OK[0] {
		t.Fatal("diversity transmission failed after the full lifecycle")
	}
}
